// The perfectly arc-hiding Protocol 4 variant sketched in Section 5.1.1.
//
// Instead of publishing an obfuscated superset E' (which still tells the
// providers that E ⊆ E'), the providers compute counters for ALL n(n-1)
// ordered pairs and H retrieves the masked numerators for its |E| arcs via
// |E|-out-of-(n^2-n) oblivious transfer against P1 and P2 — so the
// providers learn nothing at all about E, and H learns masked values for
// exactly its own arcs.
//
// The paper calls this "extremely prohibitive" (O(|E| n^2) modular
// exponentiations plus Protocol 2 over all pairs); ablation A7 measures
// just how prohibitive, which is the practical argument for the E'
// obfuscation trade-off.

#ifndef PSI_MPC_PERFECT_HIDING_H_
#define PSI_MPC_PERFECT_HIDING_H_

#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "influence/link_influence.h"
#include "mpc/link_influence_protocol.h"
#include "net/network.h"

namespace psi {

/// \brief Parameters of the perfect-hiding variant.
struct PerfectHidingConfig {
  uint64_t h = 4;
  uint64_t epsilon_log2 = 40;
  bool use_secret_permutation = true;
  size_t fraction_bits = 64;
  size_t ot_rsa_bits = 512;  ///< Key size for the OT transfers.
};

/// \brief Protocol 4 with oblivious-transfer retrieval (Section 5.1.1).
class PerfectHidingLinkInfluenceProtocol {
 public:
  PerfectHidingLinkInfluenceProtocol(Network* network, PartyId host,
                                     std::vector<PartyId> providers,
                                     PerfectHidingConfig config);

  /// \brief Runs the protocol; H learns p_ij for its arcs, the providers
  /// learn nothing about E (not even a superset).
  [[nodiscard]] Result<LinkInfluence> Run(const SocialGraph& host_graph,
                            uint64_t num_actions_public,
                            const std::vector<ActionLog>& provider_logs,
                            Rng* host_rng,
                            const std::vector<Rng*>& provider_rngs,
                            Rng* pair_secret_rng);

 private:
  // The protocol body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<LinkInfluence> RunImpl(
      const SocialGraph& host_graph, uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs, Rng* host_rng,
      const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng);

  Network* network_;
  PartyId host_;
  std::vector<PartyId> providers_;
  PerfectHidingConfig config_;
};

/// \brief Canonical index of the ordered pair (i, j), i != j, in the
/// all-pairs enumeration over n users (row-major with the diagonal removed).
size_t AllPairsIndex(NodeId i, NodeId j, size_t n);

/// \brief The full all-pairs list in canonical order.
std::vector<Arc> AllOrderedPairs(size_t n);

}  // namespace psi

#endif  // PSI_MPC_PERFECT_HIDING_H_
