// Protocol 6 (Section 6.1): secure computation of the propagation graphs
// PG(alpha) for all actions.
//
// H publishes the obfuscated arc set Omega_E' and a public encryption key.
// Every provider computes, for each action it controls, the vector
// Delta_alpha of time differences over Omega_E' (0 where no influence
// episode), encrypts it under H's key and routes it through P1 — so H cannot
// link ciphertexts to their producing provider beyond what P1 forwards, and
// P1 (without the private key) learns nothing about its peers' data. H
// decrypts and keeps, per action, exactly the arcs of E with Delta > 0
// (the arc labels of Definition 3.1).
//
// Encryption modes:
//  * kPerInteger — the paper's accounting (Table 2): one z-bit RSA
//    ciphertext per integer, randomized with a 64-bit pad so equal Deltas
//    do not produce equal ciphertexts.
//  * kHybrid    — one RSA-KEM + ChaCha20 stream per Delta vector (the
//    production configuration; ablation A4 quantifies the gap).
//  * kPackedInteger — kPerInteger's accounting shrunk by slot packing
//    (crypto/packing.h): k = floor((z - 65) / BitLength(delta_bound))
//    Deltas ride in each ciphertext, whose low 64 bits hold the random
//    pad. An action whose Delta exceeds the public bound falls back to
//    kPerInteger for that one vector (the mode byte is per action).

#ifndef PSI_MPC_PROPAGATION_PROTOCOL_H_
#define PSI_MPC_PROPAGATION_PROTOCOL_H_

#include <string>
#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"
#include "crypto/rsa.h"
#include "graph/graph.h"
#include "graph/propagation_graph.h"
#include "mpc/session.h"
#include "net/network.h"

namespace psi {

/// \brief Registers Protocol 6's stage programs ("p6/encrypt") with the
/// global StageProgramRegistry. Idempotent; RunSession calls it, and the
/// psid execution engine calls it at startup so a daemon can run the
/// programs without ever driving a session.
void RegisterPropagationStagePrograms();

/// \brief Protocol 6 parameters.
struct Protocol6Config {
  double obfuscation_factor = 2.0;  ///< The c > 1 of step 1.
  size_t rsa_bits = 512;            ///< Modulus size (z = rsa_bits).
  enum class EncryptionMode { kPerInteger, kHybrid, kPackedInteger };
  EncryptionMode encryption = EncryptionMode::kPerInteger;
  /// Public inclusive bound on Delta values for kPackedInteger (Deltas are
  /// timestamp differences, so a deployment bounds them by the log's time
  /// horizon). Vectors that exceed it fall back to kPerInteger.
  uint64_t packed_delta_bound = (1ull << 32) - 1;
};

/// \brief Host-side output.
struct Protocol6Output {
  /// graphs[alpha] is PG(alpha); empty graph when no one performed alpha.
  std::vector<PropagationGraph> graphs;
};

/// \brief Observations recorded for privacy tests.
struct Protocol6Views {
  std::vector<Arc> omega;            ///< What the providers saw of E.
  uint64_t p1_relayed_bytes = 0;     ///< Ciphertext bytes through P1.
  size_t p1_relayed_ciphertexts = 0; ///< Ciphertext count through P1.
};

/// \brief Orchestrates Protocol 6 across the simulated network.
class PropagationGraphProtocol {
 public:
  PropagationGraphProtocol(Network* network, PartyId host,
                           std::vector<PartyId> providers,
                           Protocol6Config config);

  /// \brief Runs the protocol (exclusive case: every action's records live
  /// at exactly one provider).
  ///
  /// \param num_actions public |A|; output graphs are indexed by action id.
  [[nodiscard]] Result<Protocol6Output> Run(const SocialGraph& host_graph,
                              size_t num_actions,
                              const std::vector<ActionLog>& provider_logs,
                              Rng* host_rng,
                              const std::vector<Rng*>& provider_rngs);

  /// \brief Runs the protocol as a checkpointed session (mpc/session.h):
  /// resumable stages (omega, keygen, one encrypt-P<k> per provider, relay,
  /// decode) under `retry`. The host's RSA private key checkpoints into its
  /// durable SessionState (never the wire), so a crash-restarted run
  /// decrypts with the original key and converges bitwise to the fault-free
  /// output. The encrypt-P<k> stages are registered stage programs
  /// ("p6/encrypt") placed on their providers: pass a
  /// RemoteSessionOrchestrator (mpc/remote_exec.h) as `orchestrator` to
  /// execute them on the providers' psid daemons; with the default
  /// orchestrator (nullptr: one is built from `retry`; when non-null,
  /// `retry` is ignored in favor of the orchestrator's own policy) they run
  /// in-process. `Run` is exactly this with a single attempt. `stats_out`
  /// (optional) receives the session's SessionStats.
  [[nodiscard]] Result<Protocol6Output> RunSession(
      const SocialGraph& host_graph, size_t num_actions,
      const std::vector<ActionLog>& provider_logs, Rng* host_rng,
      const std::vector<Rng*>& provider_rngs, const RetryPolicy& retry,
      SessionStats* stats_out = nullptr,
      SessionOrchestrator* orchestrator = nullptr);

  const Protocol6Views& views() const { return views_; }

 private:
  Network* network_;
  PartyId host_;
  std::vector<PartyId> providers_;
  Protocol6Config config_;
  Protocol6Views views_;
};

}  // namespace psi

#endif  // PSI_MPC_PROPAGATION_PROTOCOL_H_
