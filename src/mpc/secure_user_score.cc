#include "mpc/secure_user_score.h"

#include <cmath>

#include "actionlog/counters.h"
#include "common/serialize.h"
#include "mpc/joint_random.h"
#include "mpc/wire.h"

namespace psi {

namespace {

}  // namespace

SecureUserScoreProtocol::SecureUserScoreProtocol(
    Network* network, PartyId host, std::vector<PartyId> providers,
    SecureScoreConfig config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(std::move(config)) {}

Result<std::vector<double>> SecureUserScoreProtocol::Run(
    const SocialGraph& host_graph, size_t num_actions,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng) {
  return DrainOnError(network_,
                      RunImpl(host_graph, num_actions, provider_logs, host_rng,
                              provider_rngs, pair_secret_rng));
}

Result<std::vector<double>> SecureUserScoreProtocol::RunImpl(
    const SocialGraph& host_graph, size_t num_actions,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng) {
  const size_t m = providers_.size();
  const size_t n = host_graph.num_nodes();
  if (m < 2) return Status::InvalidArgument("pipeline needs >= 2 providers");
  if (config_.score_options.include_self) {
    return Status::Unimplemented(
        "include_self scoring needs performer sets, which Protocol 6 "
        "deliberately withholds from H; use the plaintext baseline");
  }

  // ---- Phase 1: Protocol 6 gives H every PG(alpha). ----
  PropagationGraphProtocol p6(network_, host_, providers_, config_.protocol6);
  PSI_ASSIGN_OR_RETURN(Protocol6Output pgs,
                       p6.Run(host_graph, num_actions, provider_logs, host_rng,
                              provider_rngs));
  p6_views_ = p6.views();

  // ---- Phase 2: secure a_i shares (batched Protocol 2 over n counters). --
  std::vector<std::vector<uint64_t>> inputs(m);
  for (size_t k = 0; k < m; ++k) {
    inputs[k] = ComputeActionCounts(provider_logs[k], n);
  }
  SecureSumConfig sum_config;
  sum_config.input_bound_a = BigUInt(num_actions);
  sum_config.modulus_s = RecommendedModulus(sum_config.input_bound_a, n,
                                            config_.epsilon_log2);
  PartyId third_party = (m > 2) ? providers_[2] : host_;
  SecureSumProtocol secure_sum(network_, providers_, third_party, sum_config);
  PSI_ASSIGN_OR_RETURN(
      BatchedIntegerShares shares,
      secure_sum.RunProtocol2(inputs, provider_rngs, pair_secret_rng, "P6S."));

  // ---- Phase 3: masked reveal of a_i (division by the constant 1). ----
  PSI_ASSIGN_OR_RETURN(
      auto u_m, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                  provider_rngs[0], provider_rngs[1],
                                  "P6S.Step5 (joint M_i)"));
  std::vector<double> m_values = ToZDistribution(u_m);
  PSI_ASSIGN_OR_RETURN(
      auto u_r, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                  provider_rngs[0], provider_rngs[1],
                                  "P6S.Step6 (joint r_i)"));
  PSI_ASSIGN_OR_RETURN(auto r_values, ToUniformBelow(u_r, m_values));

  std::vector<BigUInt> masks(n);
  for (size_t i = 0; i < n; ++i) {
    PSI_ASSIGN_OR_RETURN(masks[i],
                         BigUIntFromDouble(std::ldexp(r_values[i], 64)));
    if (masks[i].IsZero()) masks[i] = BigUInt(1);
  }

  // P1 sends R_i * s1(a_i) and R_i * 1; P2 sends R_i * s2(a_i) (its share of
  // the public constant is 0, which it need not transmit).
  std::vector<BigUInt> masked1(n), masked_unit(n);
  std::vector<BigInt> masked2(n);
  for (size_t i = 0; i < n; ++i) {
    masked1[i] = masks[i] * shares.s1[i];
    masked_unit[i] = masks[i];
    masked2[i] = BigInt(masks[i]) * shares.s2[i];
  }
  network_->BeginRound("P6S.Steps7-8 (masked a_i shares -> H)");
  {
    BinaryWriter w;
    w.WriteVarU64(n);
    for (size_t i = 0; i < n; ++i) {
      WriteBigUInt(&w, masked1[i]);
      WriteBigUInt(&w, masked_unit[i]);
    }
    PSI_RETURN_NOT_OK(network_->Send(providers_[0], host_, w.TakeBuffer()));
  }
  PSI_RETURN_NOT_OK(network_->Send(providers_[1], host_, wire::PackBigInts(masked2)));

  // Host reconstructs a_i = (R*a_i) / (R*1) exactly.
  PSI_ASSIGN_OR_RETURN(auto buf1, network_->Recv(host_, providers_[0]));
  PSI_ASSIGN_OR_RETURN(auto buf2, network_->Recv(host_, providers_[1]));
  std::vector<BigUInt> host_m1(n), host_unit(n);
  {
    BinaryReader r(buf1);
    uint64_t count;
    PSI_RETURN_NOT_OK(r.ReadVarU64(&count));
    if (count != n) return Status::ProtocolError("masked vector length");
    for (size_t i = 0; i < n; ++i) {
      PSI_RETURN_NOT_OK(ReadBigUInt(&r, &host_m1[i]));
      PSI_RETURN_NOT_OK(ReadBigUInt(&r, &host_unit[i]));
    }
  }
  std::vector<BigInt> host_m2;
  PSI_RETURN_NOT_OK(wire::UnpackBigInts(buf2, &host_m2));
  if (host_m2.size() != n) {
    return Status::ProtocolError("masked vector length");
  }

  revealed_a_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    BigInt numer = BigInt(host_m1[i]) + host_m2[i];
    if (numer.IsNegative() || host_unit[i].IsZero()) {
      return Status::ProtocolError("invalid masked a_i recombination");
    }
    // Exact: numer == R_i * a_i and host_unit == R_i.
    PSI_ASSIGN_OR_RETURN(revealed_a_[i],
                         (numer.magnitude() / host_unit[i]).ToUint64());
  }

  // ---- Phase 4 (local at H): Eq. (3) from the PGs and the a_i. ----
  std::vector<double> numer(n, 0.0);
  for (const auto& pg : pgs.graphs) {
    for (NodeId v = 0; v < n; ++v) {
      // Only performers can own a non-empty sphere; a non-performer has no
      // outgoing PG arcs, so its sphere is empty and can be skipped.
      if (pg.OutArcs(v).empty()) continue;
      numer[v] += static_cast<double>(
          pg.InfluenceSphereSize(v, config_.score_options.tau));
    }
  }
  std::vector<double> scores(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (revealed_a_[v] > 0) {
      scores[v] = numer[v] / static_cast<double>(revealed_a_[v]);
    }
  }
  return scores;
}

}  // namespace psi
