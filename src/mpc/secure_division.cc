#include "mpc/secure_division.h"

#include "common/serialize.h"
#include "mpc/joint_random.h"

namespace psi {

Result<double> SecureDivisionProtocol::Run(uint64_t a1, uint64_t a2, Rng* rng1,
                                           Rng* rng2,
                                           const std::string& label_prefix) {
  return DrainOnError(network_, RunImpl(a1, a2, rng1, rng2, label_prefix));
}

Result<double> SecureDivisionProtocol::RunImpl(
    uint64_t a1, uint64_t a2, Rng* rng1, Rng* rng2,
    const std::string& label_prefix) {
  // Steps 1-2: joint M ~ Z, then joint r ~ U(0, M).
  PSI_ASSIGN_OR_RETURN(
      auto u_m, JointUniformBatch(network_, p1_, p2_, 1, rng1, rng2,
                                  label_prefix + "Prot3.Step1 (joint M)"));
  std::vector<double> m_values = ToZDistribution(u_m);
  PSI_ASSIGN_OR_RETURN(
      auto u_r, JointUniformBatch(network_, p1_, p2_, 1, rng1, rng2,
                                  label_prefix + "Prot3.Step2 (joint r)"));
  PSI_ASSIGN_OR_RETURN(auto r_values, ToUniformBelow(u_r, m_values));
  const double r = r_values[0];

  // Steps 3-4: both masked products travel to H in one round.
  network_->BeginRound(label_prefix + "Prot3.Steps3-4 (masked values to H)");
  auto pack = [](double v) {
    BinaryWriter w;
    w.WriteDouble(v);
    return w.TakeBuffer();
  };
  constexpr uint16_t kStepMaskedToHost = 3;
  PSI_RETURN_NOT_OK(network_->SendFramed(p1_, host_,
                                         ProtocolId::kSecureDivision,
                                         kStepMaskedToHost,
                                         pack(r * static_cast<double>(a1))));
  PSI_RETURN_NOT_OK(network_->SendFramed(p2_, host_,
                                         ProtocolId::kSecureDivision,
                                         kStepMaskedToHost,
                                         pack(r * static_cast<double>(a2))));

  // Steps 5-9 (local at H).
  auto read_double = [](const std::vector<uint8_t>& buf) -> Result<double> {
    if (buf.size() != 8) {
      return Status::ProtocolError("masked value must be exactly one double");
    }
    BinaryReader reader(buf);
    double v;
    PSI_RETURN_NOT_OK(reader.ReadDouble(&v));
    return v;
  };
  PSI_ASSIGN_OR_RETURN(
      auto buf1, network_->RecvValidated(host_, p1_,
                                         ProtocolId::kSecureDivision,
                                         kStepMaskedToHost));
  PSI_ASSIGN_OR_RETURN(
      auto buf2, network_->RecvValidated(host_, p2_,
                                         ProtocolId::kSecureDivision,
                                         kStepMaskedToHost));
  PSI_ASSIGN_OR_RETURN(views_.masked_a1, read_double(buf1));
  PSI_ASSIGN_OR_RETURN(views_.masked_a2, read_double(buf2));

  if (views_.masked_a2 == 0.0) return 0.0;
  return views_.masked_a1 / views_.masked_a2;
}

}  // namespace psi
