// Shared wire codecs for the MPC protocols.
//
// Every protocol driver used to carry its own anonymous-namespace copy of
// these pack/unpack helpers; several of the older copies resized vectors from
// an attacker-controlled count before reading a single element. The shared
// versions follow the hardened BinaryReader discipline:
//
//   * counts are read with ReadCount(min_bytes_per_element) so a tiny buffer
//     can never drive a large allocation, and
//   * every decoder rejects trailing bytes, so a frame is either exactly one
//     message or an error.
//
// psi_lint's read-bounds check enforces this discipline going forward
// (docs/STATIC_ANALYSIS.md).

#ifndef PSI_MPC_WIRE_H_
#define PSI_MPC_WIRE_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "bigint/bigint.h"
#include "bigint/biguint.h"
#include "common/status.h"
#include "graph/graph.h"

namespace psi {
namespace wire {

/// \brief Encodes an arc list as varint count + (u32 from, u32 to) pairs.
std::vector<uint8_t> PackArcs(const std::vector<Arc>& arcs);

/// \brief Decodes PackArcs output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackArcs(const std::vector<uint8_t>& buf,
                                std::vector<Arc>* out);

/// \brief Encodes a BigUInt batch as varint count + serialized elements.
std::vector<uint8_t> PackBigUInts(const std::vector<BigUInt>& v);

/// \brief Decodes PackBigUInts output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackBigUInts(const std::vector<uint8_t>& buf,
                                    std::vector<BigUInt>* out);

/// \brief Encodes a BigInt batch as varint count + serialized elements.
std::vector<uint8_t> PackBigInts(const std::vector<BigInt>& v);

/// \brief Decodes PackBigInts output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackBigInts(const std::vector<uint8_t>& buf,
                                   std::vector<BigInt>* out);

/// \brief Encodes a u64 batch as varint count + fixed-width u64 elements
/// (checkpointed counter vectors in mpc/session stages).
std::vector<uint8_t> PackU64s(const std::vector<uint64_t>& v);

/// \brief Decodes PackU64s output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackU64s(const std::vector<uint8_t>& buf,
                                std::vector<uint64_t>* out);

/// \brief Encodes an action-record batch as varint count +
/// (u32 user, u32 action, u64 time) triples.
std::vector<uint8_t> PackRecords(const std::vector<ActionRecord>& records);

/// \brief Decodes PackRecords output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackRecords(const std::vector<uint8_t>& buf,
                                   std::vector<ActionRecord>* out);

}  // namespace wire
}  // namespace psi

#endif  // PSI_MPC_WIRE_H_
