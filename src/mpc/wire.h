// Shared wire codecs for the MPC protocols.
//
// Every protocol driver used to carry its own anonymous-namespace copy of
// these pack/unpack helpers; several of the older copies resized vectors from
// an attacker-controlled count before reading a single element. The shared
// versions follow the hardened BinaryReader discipline:
//
//   * counts are read with ReadCount(min_bytes_per_element) so a tiny buffer
//     can never drive a large allocation, and
//   * every decoder rejects trailing bytes, so a frame is either exactly one
//     message or an error.
//
// psi_lint's read-bounds check enforces this discipline going forward
// (docs/STATIC_ANALYSIS.md).

#ifndef PSI_MPC_WIRE_H_
#define PSI_MPC_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "actionlog/action_log.h"
#include "bigint/bigint.h"
#include "bigint/biguint.h"
#include "common/annotations.h"
#include "common/status.h"
#include "graph/graph.h"

namespace psi {
namespace wire {

/// \brief Encodes an arc list as varint count + (u32 from, u32 to) pairs.
std::vector<uint8_t> PackArcs(const std::vector<Arc>& arcs);

/// \brief Decodes PackArcs output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackArcs(const std::vector<uint8_t>& buf,
                                std::vector<Arc>* out);

/// \brief Encodes a BigUInt batch as varint count + serialized elements.
std::vector<uint8_t> PackBigUInts(const std::vector<BigUInt>& v);

/// \brief Decodes PackBigUInts output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackBigUInts(const std::vector<uint8_t>& buf,
                                    std::vector<BigUInt>* out);

/// \brief Encodes a BigInt batch as varint count + serialized elements.
std::vector<uint8_t> PackBigInts(const std::vector<BigInt>& v);

/// \brief Decodes PackBigInts output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackBigInts(const std::vector<uint8_t>& buf,
                                   std::vector<BigInt>* out);

/// \brief Encodes a u64 batch as varint count + fixed-width u64 elements
/// (checkpointed counter vectors in mpc/session stages).
std::vector<uint8_t> PackU64s(const std::vector<uint64_t>& v);

/// \brief Decodes PackU64s output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackU64s(const std::vector<uint8_t>& buf,
                                std::vector<uint64_t>* out);

/// \brief Encodes an action-record batch as varint count +
/// (u32 user, u32 action, u64 time) triples.
std::vector<uint8_t> PackRecords(const std::vector<ActionRecord>& records);

/// \brief Decodes PackRecords output; rejects oversized counts and trailing
/// bytes.
[[nodiscard]] Status UnpackRecords(const std::vector<uint8_t>& buf,
                                   std::vector<ActionRecord>* out);

// ---------------------------------------------------------------------------
// Remote stage execution (ProtocolId::kExec). An ExecRequest asks the daemon
// hosting `party` to run one registered stage program against that party's
// SessionState; the ExecResponse ships the post-stage state and advanced RNG
// snapshots back — the daemon-side checkpoint the host commits. Both codecs
// are versioned and follow the hardened decode discipline (bounded counts,
// no trailing bytes): a daemon parses requests from the wire.
// ---------------------------------------------------------------------------

/// \brief Version tag of the exec request/response wire format.
inline constexpr uint32_t kExecWireVersion = 1;

/// \brief Step tags of ProtocolId::kExec envelopes. The envelope `seq`
/// field carries the stage index so late results of a timed-out call are
/// recognizably stale.
inline constexpr uint16_t kExecStepRequest = 1;
inline constexpr uint16_t kExecStepResult = 2;

/// \brief A labelled RNG snapshot (label as registered on the session).
/// The snapshot bytes determine the party's future secret draws — they ride
/// the exec channel only, which terminates at the party's own daemon.
using ExecRngBlob = std::pair<std::string, std::vector<uint8_t>>;

/// \brief One stage-program invocation.
struct ExecRequest {
  std::string session;        ///< Session name (daemon slot key).
  std::string program;        ///< Registry key, e.g. "p6/encrypt".
  uint32_t stage_index = 0;   ///< Position in the session's stage list.
  uint32_t attempt = 1;       ///< Host-side attempt counter (logs only).
  uint32_t party = 0;         ///< The executing party.
  /// When true, `state_blob` carries the party's full durable state (fresh
  /// daemon, or restore after reconnect). When false the daemon must
  /// already hold state for (session, party) at exactly `stage_index`
  /// completed stages, else it answers kNeedState. RNG snapshots always
  /// ride along (tiny; listed in the stage spec's label order) — the host
  /// stays the authority on randomness, so a replayed request re-derives
  /// bitwise the same draws.
  bool includes_state = false;
  PSI_SECRET std::vector<uint8_t> state_blob;  ///< SessionState::Serialize.
  PSI_SECRET std::vector<ExecRngBlob> rng_blobs;
};

/// \brief What happened to an ExecRequest.
enum class ExecOutcome : uint8_t {
  kOk = 0,           ///< Program ran; state/rng blobs are the new checkpoint.
  kNeedState = 1,    ///< Daemon holds no matching state; resend with it.
  kError = 2,        ///< Program ran and failed (message has the status).
  kUnsupported = 3,  ///< Program unknown to this daemon's registry.
};

/// \brief The daemon's answer: outcome plus, on kOk, the daemon-side
/// checkpoint (post-stage party state, advanced RNG snapshots, metered
/// crypto ops).
struct ExecResponse {
  ExecOutcome outcome = ExecOutcome::kError;
  std::string message;       ///< Error detail for kError / kUnsupported.
  bool from_cache = false;   ///< Served from the daemon's result cache.
  uint64_t crypto_ops = 0;   ///< Ops the program metered (kOk only).
  PSI_SECRET std::vector<uint8_t> state_blob;
  PSI_SECRET std::vector<ExecRngBlob> rng_blobs;
};

/// \brief Encodes an ExecRequest (versioned).
std::vector<uint8_t> PackExecRequest(const ExecRequest& req);

/// \brief Decodes PackExecRequest output; rejects version mismatches,
/// oversized counts and trailing bytes.
[[nodiscard]] Status UnpackExecRequest(const std::vector<uint8_t>& buf,
                                       ExecRequest* out);

/// \brief Encodes an ExecResponse (versioned).
std::vector<uint8_t> PackExecResponse(const ExecResponse& resp);

/// \brief Decodes PackExecResponse output; rejects version mismatches,
/// unknown outcomes, oversized counts and trailing bytes.
[[nodiscard]] Status UnpackExecResponse(const std::vector<uint8_t>& buf,
                                        ExecResponse* out);

}  // namespace wire
}  // namespace psi

#endif  // PSI_MPC_WIRE_H_
