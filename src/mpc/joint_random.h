// Joint randomness between two parties over the network.
//
// Protocols 3 and 4 require P1 and P2 to "jointly generate" random reals
// (M_i ~ Z and r_i ~ U(0, M_i)). The paper's cost model (Table 1) accounts
// one exchange of n reals in each direction per batch, which is what
// JointUniformBatch produces: each party contributes a uniform vector, the
// joint value is the fractional part of the sum, so neither party alone
// biases or predicts it in the semi-honest model. (A malicious-model variant
// would wrap the first message in a hash commitment — crypto/commitment.h —
// at the cost of one extra round.)

#ifndef PSI_MPC_JOINT_RANDOM_H_
#define PSI_MPC_JOINT_RANDOM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/network.h"

namespace psi {

/// \brief One metered exchange producing `count` joint uniforms in [0, 1).
///
/// Opens one communication round labeled `label`; sends one message in each
/// direction (2 messages of count * 8 bytes), matching the Table 1 rows for
/// Protocol 4 steps 5 and 6.
[[nodiscard]] Result<std::vector<double>> JointUniformBatch(Network* network, PartyId a,
                                              PartyId b, size_t count,
                                              Rng* rng_a, Rng* rng_b,
                                              const std::string& label);

/// \brief Transforms joint uniforms into Z-distributed masks M = 1/(1-u).
std::vector<double> ToZDistribution(const std::vector<double>& uniforms);

/// \brief Transforms joint uniforms into r_i ~ U(0, M_i).
[[nodiscard]] Result<std::vector<double>> ToUniformBelow(const std::vector<double>& uniforms,
                                           const std::vector<double>& bounds);

}  // namespace psi

#endif  // PSI_MPC_JOINT_RANDOM_H_
