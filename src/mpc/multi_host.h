// Extension: the multi-host setting from the paper's future work
// (Section 8): "the graph data is split between several social networking
// platforms".
//
// r hosts H_1..H_r each own a private arc set over a common user universe
// (users link their accounts across platforms; arc sets may overlap). The m
// providers hold the action logs as before. Design:
//   1. every host publishes its own obfuscated arc set Omega_h (one round,
//      r*m messages);
//   2. the providers run ONE batched Protocol 2 over the concatenated
//      counter vector [a | b(Omega_1) | ... | b(Omega_r)], amortizing the
//      O(m^2) share exchange across all hosts;
//   3. P1/P2 draw per-user masks once and send each host the masked
//      a-shares plus only *its own* masked b-slice (2r messages), so a host
//      learns nothing about the other hosts' arc sets beyond their sizes.
// Each host then recovers exactly the quotients for its own arcs, as in
// Protocol 4 step 9.

#ifndef PSI_MPC_MULTI_HOST_H_
#define PSI_MPC_MULTI_HOST_H_

#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "influence/link_influence.h"
#include "mpc/link_influence_protocol.h"
#include "net/network.h"

namespace psi {

/// \brief Orchestrates the multi-host link-influence computation.
class MultiHostLinkInfluenceProtocol {
 public:
  MultiHostLinkInfluenceProtocol(Network* network, std::vector<PartyId> hosts,
                                 std::vector<PartyId> providers,
                                 Protocol4Config config);

  /// \brief Runs the protocol. Supports both the Eq. (1) and (via
  /// config.weights) the Eq. (2) definitions.
  ///
  /// \param host_graphs host h's private graph (all share one user count).
  /// \return per-host link influence: out[h] covers host_graphs[h]->arcs().
  [[nodiscard]] Result<std::vector<LinkInfluence>> Run(
      const std::vector<const SocialGraph*>& host_graphs,
      uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs,
      const std::vector<Rng*>& host_rngs,
      const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng);

  /// \brief Per-host Omega sizes of the last run (what providers observed).
  const std::vector<size_t>& omega_sizes() const { return omega_sizes_; }

 private:
  // The protocol body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<std::vector<LinkInfluence>> RunImpl(
      const std::vector<const SocialGraph*>& host_graphs,
      uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs,
      const std::vector<Rng*>& host_rngs,
      const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng);

  Network* network_;
  std::vector<PartyId> hosts_;
  std::vector<PartyId> providers_;
  Protocol4Config config_;
  std::vector<size_t> omega_sizes_;
};

}  // namespace psi

#endif  // PSI_MPC_MULTI_HOST_H_
