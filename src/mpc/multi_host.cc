#include "mpc/multi_host.h"

#include <cmath>
#include <unordered_map>

#include "common/annotations.h"
#include "common/serialize.h"
#include "graph/generators.h"
#include "mpc/joint_random.h"
#include "mpc/secure_sum.h"
#include "mpc/wire.h"

namespace psi {

namespace {

uint64_t PairKey(NodeId i, NodeId j) {
  return (static_cast<uint64_t>(i) << 32) | j;
}

}  // namespace

MultiHostLinkInfluenceProtocol::MultiHostLinkInfluenceProtocol(
    Network* network, std::vector<PartyId> hosts,
    std::vector<PartyId> providers, Protocol4Config config)
    : network_(network),
      hosts_(std::move(hosts)),
      providers_(std::move(providers)),
      config_(std::move(config)) {}

Result<std::vector<LinkInfluence>> MultiHostLinkInfluenceProtocol::Run(
    const std::vector<const SocialGraph*>& host_graphs,
    uint64_t num_actions_public, const std::vector<ActionLog>& provider_logs,
    const std::vector<Rng*>& host_rngs, const std::vector<Rng*>& provider_rngs,
    Rng* pair_secret_rng) {
  return DrainOnError(
      network_, RunImpl(host_graphs, num_actions_public, provider_logs,
                        host_rngs, provider_rngs, pair_secret_rng));
}

Result<std::vector<LinkInfluence>> MultiHostLinkInfluenceProtocol::RunImpl(
    const std::vector<const SocialGraph*>& host_graphs,
    uint64_t num_actions_public, const std::vector<ActionLog>& provider_logs,
    const std::vector<Rng*>& host_rngs, const std::vector<Rng*>& provider_rngs,
    Rng* pair_secret_rng) {
  const size_t r = hosts_.size();
  const size_t m = providers_.size();
  if (r == 0) return Status::InvalidArgument("need at least one host");
  if (m < 2) return Status::InvalidArgument("need at least two providers");
  if (host_graphs.size() != r || host_rngs.size() != r) {
    return Status::InvalidArgument("one graph and rng per host");
  }
  if (provider_logs.size() != m || provider_rngs.size() != m) {
    return Status::InvalidArgument("one log and rng per provider");
  }
  const size_t n = host_graphs[0]->num_nodes();
  for (const auto* g : host_graphs) {
    if (g->num_nodes() != n) {
      return Status::InvalidArgument("hosts must share the user universe");
    }
  }

  // ---- Step 1: every host publishes its obfuscated arc set. ----
  std::vector<std::vector<Arc>> omegas(r);
  network_->BeginRound("MH.Step1 (H_h -> P_k: Omega_h)");
  for (size_t h = 0; h < r; ++h) {
    PSI_ASSIGN_OR_RETURN(omegas[h],
                         ObfuscateArcSet(host_rngs[h], *host_graphs[h],
                                         config_.obfuscation_factor));
    auto packed = wire::PackArcs(omegas[h]);
    for (size_t k = 0; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->Send(hosts_[h], providers_[k], packed));
    }
  }
  omega_sizes_.clear();
  for (const auto& o : omegas) omega_sizes_.push_back(o.size());

  // Providers receive and concatenate all Omegas.
  std::vector<Arc> all_pairs;
  std::vector<size_t> range_start(r + 1, 0);
  {
    // Every provider receives identical content; decode from provider 0's
    // copy and drain the rest.
    for (size_t h = 0; h < r; ++h) {
      std::vector<Arc> decoded;
      for (size_t k = 0; k < m; ++k) {
        PSI_ASSIGN_OR_RETURN(auto buf,
                             network_->Recv(providers_[k], hosts_[h]));
        if (k == 0) PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &decoded));
      }
      range_start[h] = all_pairs.size();
      all_pairs.insert(all_pairs.end(), decoded.begin(), decoded.end());
    }
    range_start[r] = all_pairs.size();
  }
  const size_t q_total = all_pairs.size();

  // ---- Step 2: one batched Protocol 2 over [a | b(all Omegas)]. ----
  std::vector<std::vector<uint64_t>> inputs(m);
  for (size_t k = 0; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(inputs[k],
                         ComputeProviderCounterVector(
                             provider_logs[k], n, all_pairs, config_));
  }
  BigUInt bound(num_actions_public);
  if (config_.weights.has_value()) {
    bound = bound * BigUInt(config_.weight_scale) * BigUInt(config_.h);
  }
  BigUInt modulus =
      config_.modulus_s.has_value()
          ? *config_.modulus_s
          : RecommendedModulus(bound, n + q_total, config_.epsilon_log2);
  SecureSumConfig sum_config;
  sum_config.modulus_s = modulus;
  sum_config.input_bound_a = bound;
  sum_config.use_secret_permutation = config_.use_secret_permutation;
  PartyId third_party = (m > 2) ? providers_[2] : hosts_[0];
  SecureSumProtocol secure_sum(network_, providers_, third_party, sum_config);
  PSI_ASSIGN_OR_RETURN(
      BatchedIntegerShares shares,
      secure_sum.RunProtocol2(inputs, provider_rngs, pair_secret_rng, "MH."));

  // ---- Step 3: joint per-user masks, drawn once for all hosts. ----
  PSI_ASSIGN_OR_RETURN(
      auto u_m, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                  provider_rngs[0], provider_rngs[1],
                                  "MH.Step5 (joint M_i)"));
  std::vector<double> m_values = ToZDistribution(u_m);
  PSI_ASSIGN_OR_RETURN(
      auto u_r, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                  provider_rngs[0], provider_rngs[1],
                                  "MH.Step6 (joint r_i)"));
  PSI_ASSIGN_OR_RETURN(auto r_values, ToUniformBelow(u_r, m_values));
  PSI_SECRET std::vector<BigUInt> masks;
  masks.resize(n);
  for (size_t i = 0; i < n; ++i) {
    PSI_ASSIGN_OR_RETURN(
        masks[i],
        BigUIntFromDouble(std::ldexp(r_values[i],
                                     static_cast<int>(config_.fraction_bits))));
    // psi-lint: allow(secret-flow) zero test only nudges the mask to 1 so the later division is defined; it leaks one bit with probability ~2^-fraction_bits
    if (masks[i].IsZero()) masks[i] = BigUInt(1);
  }
  auto mask_of_counter = [&](size_t c) -> const BigUInt& {
    return c < n ? masks[c] : masks[all_pairs[c - n].from];
  };

  // ---- Step 4: each host receives masked a-shares + its own b-slice. ----
  network_->BeginRound("MH.Steps7-8 (masked slices -> hosts)");
  const size_t total = n + q_total;
  std::vector<BigUInt> masked1(total);
  std::vector<BigInt> masked2(total);
  for (size_t c = 0; c < total; ++c) {
    masked1[c] = mask_of_counter(c) * shares.s1[c];
    masked2[c] = BigInt(mask_of_counter(c)) * shares.s2[c];
  }
  for (size_t h = 0; h < r; ++h) {
    BinaryWriter w1, w2;
    w1.WriteVarU64(n);
    w2.WriteVarU64(n);
    for (size_t i = 0; i < n; ++i) {
      WriteBigUInt(&w1, masked1[i]);
      WriteBigInt(&w2, masked2[i]);
    }
    size_t lo = n + range_start[h], hi = n + range_start[h + 1];
    w1.WriteVarU64(hi - lo);
    w2.WriteVarU64(hi - lo);
    for (size_t c = lo; c < hi; ++c) {
      WriteBigUInt(&w1, masked1[c]);
      WriteBigInt(&w2, masked2[c]);
    }
    PSI_RETURN_NOT_OK(network_->Send(providers_[0], hosts_[h], w1.TakeBuffer()));
    PSI_RETURN_NOT_OK(network_->Send(providers_[1], hosts_[h], w2.TakeBuffer()));
  }

  // ---- Step 5 (local at each host): recombine and divide. ----
  std::vector<LinkInfluence> out(r);
  for (size_t h = 0; h < r; ++h) {
    PSI_ASSIGN_OR_RETURN(auto buf1, network_->Recv(hosts_[h], providers_[0]));
    PSI_ASSIGN_OR_RETURN(auto buf2, network_->Recv(hosts_[h], providers_[1]));
    BinaryReader r1(buf1), r2(buf2);
    uint64_t count_a1, count_a2;
    PSI_RETURN_NOT_OK(r1.ReadVarU64(&count_a1));
    PSI_RETURN_NOT_OK(r2.ReadVarU64(&count_a2));
    if (count_a1 != n || count_a2 != n) {
      return Status::ProtocolError("masked a-vector length mismatch");
    }
    std::vector<BigUInt> masked_a(n);
    for (size_t i = 0; i < n; ++i) {
      BigUInt v1;
      BigInt v2;
      PSI_RETURN_NOT_OK(ReadBigUInt(&r1, &v1));
      PSI_RETURN_NOT_OK(ReadBigInt(&r2, &v2));
      BigInt value = BigInt(v1) + v2;
      if (value.IsNegative()) {
        return Status::ProtocolError("negative recombined counter");
      }
      masked_a[i] = value.magnitude();
    }
    uint64_t count_b1, count_b2;
    PSI_RETURN_NOT_OK(r1.ReadVarU64(&count_b1));
    PSI_RETURN_NOT_OK(r2.ReadVarU64(&count_b2));
    size_t q_h = range_start[h + 1] - range_start[h];
    if (count_b1 != q_h || count_b2 != q_h) {
      return Status::ProtocolError("masked b-slice length mismatch");
    }
    std::vector<BigUInt> masked_b(q_h);
    for (size_t p = 0; p < q_h; ++p) {
      BigUInt v1;
      BigInt v2;
      PSI_RETURN_NOT_OK(ReadBigUInt(&r1, &v1));
      PSI_RETURN_NOT_OK(ReadBigInt(&r2, &v2));
      BigInt value = BigInt(v1) + v2;
      if (value.IsNegative()) {
        return Status::ProtocolError("negative recombined counter");
      }
      masked_b[p] = value.magnitude();
    }
    // Quotients for this host's genuine arcs.
    std::unordered_map<uint64_t, size_t> omega_index;
    omega_index.reserve(q_h);
    for (size_t p = 0; p < q_h; ++p) {
      const Arc& a = omegas[h][p];
      omega_index.emplace(PairKey(a.from, a.to), p);
    }
    out[h].pairs = host_graphs[h]->arcs();
    out[h].p.resize(out[h].pairs.size());
    const double descale = config_.weights.has_value()
                               ? static_cast<double>(config_.weight_scale)
                               : 1.0;
    for (size_t e = 0; e < out[h].pairs.size(); ++e) {
      const Arc& arc = out[h].pairs[e];
      auto it = omega_index.find(PairKey(arc.from, arc.to));
      if (it == omega_index.end()) {
        return Status::ProtocolError("arc missing from host's Omega");
      }
      const BigUInt& denom = masked_a[arc.from];
      out[h].p[e] =
          denom.IsZero()
              ? 0.0
              : DivideToDouble(masked_b[it->second], denom) / descale;
    }
  }
  return out;
}

}  // namespace psi
