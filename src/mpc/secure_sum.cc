#include "mpc/secure_sum.h"

#include "bigint/modular.h"
#include "common/annotations.h"
#include "common/serialize.h"
#include "crypto/permutation.h"

namespace psi {

namespace {

// Step tags for ProtocolId::kSecureSum frames (Protocols 1-2).
constexpr uint16_t kStepPairwiseShares = 2;   // Prot1 step 2.
constexpr uint16_t kStepFoldIntoP2 = 4;       // Prot1 steps 4-5.
constexpr uint16_t kStepToThirdParty = 3;     // Prot2 steps 3-4.
constexpr uint16_t kStepComparisonBits = 6;   // Prot2 step 6.

std::vector<uint8_t> PackShareVector(const std::vector<BigUInt>& shares) {
  BinaryWriter w;
  w.WriteVarU64(shares.size());
  for (const auto& s : shares) WriteBigUInt(&w, s);
  return w.TakeBuffer();
}

[[nodiscard]] Status UnpackShareVector(const std::vector<uint8_t>& buf,
                         std::vector<BigUInt>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count));
  out->resize(count);
  for (auto& s : *out) PSI_RETURN_NOT_OK(ReadBigUInt(&r, &s));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackBits(const std::vector<bool>& bits) {
  BinaryWriter w;
  w.WriteVarU64(bits.size());
  uint8_t acc = 0;
  size_t filled = 0;
  for (bool b : bits) {
    acc = static_cast<uint8_t>(acc | ((b ? 1 : 0) << filled));
    if (++filled == 8) {
      w.WriteU8(acc);
      acc = 0;
      filled = 0;
    }
  }
  if (filled != 0) w.WriteU8(acc);
  return w.TakeBuffer();
}

[[nodiscard]] Status UnpackBits(const std::vector<uint8_t>& buf, std::vector<bool>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadVarU64(&count));
  if (count > static_cast<uint64_t>(r.remaining()) * 8) {
    return Status::SerializationError("bit count exceeds buffer capacity");
  }
  out->assign(count, false);
  uint8_t acc = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i % 8 == 0) PSI_RETURN_NOT_OK(r.ReadU8(&acc));
    (*out)[i] = ((acc >> (i % 8)) & 1) != 0;
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

}  // namespace

BigUInt RecommendedModulus(const BigUInt& bound_a, uint64_t num_counters,
                           uint64_t epsilon_log2) {
  // S >= A * (1 + 2 * num_counters * 2^epsilon_log2); round up to a power of
  // two for uniform-sampling efficiency.
  BigUInt target = bound_a * (BigUInt(1) +
                              (BigUInt(2) * BigUInt(num_counters)
                               << static_cast<size_t>(epsilon_log2)));
  return BigUInt::PowerOfTwo(target.BitLength());
}

SecureSumProtocol::SecureSumProtocol(Network* network,
                                     std::vector<PartyId> players,
                                     PartyId third_party,
                                     SecureSumConfig config)
    : network_(network),
      players_(std::move(players)),
      third_party_(third_party),
      config_(std::move(config)) {}

Status SecureSumProtocol::ValidateInputs(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs) const {
  const size_t m = players_.size();
  if (m < 2) return Status::InvalidArgument("need at least two players");
  if (inputs.size() != m || player_rngs.size() != m) {
    return Status::InvalidArgument("one input vector and rng per player");
  }
  const size_t count = inputs[0].size();
  for (const auto& v : inputs) {
    if (v.size() != count) {
      return Status::InvalidArgument("all input vectors must share a length");
    }
  }
  // Per-counter sums must stay within [0, A].
  for (size_t c = 0; c < count; ++c) {
    BigUInt sum;
    for (size_t k = 0; k < m; ++k) sum += BigUInt(inputs[k][c]);
    if (sum > config_.input_bound_a) {
      return Status::OutOfRange("counter sum exceeds the public bound A");
    }
  }
  if (config_.modulus_s <= config_.input_bound_a * BigUInt(4)) {
    return Status::InvalidArgument("modulus S must be >> A (at least 4A)");
  }
  for (size_t k = 0; k < m; ++k) {
    if (third_party_ == players_[k] && k < 2) {
      return Status::InvalidArgument("third party may not be P1 or P2");
    }
  }
  return Status::OK();
}

Result<BatchedModularShares> SecureSumProtocol::RunProtocol1(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  return DrainOnError(network_,
                      RunProtocol1Impl(inputs, player_rngs, label_prefix));
}

Result<BatchedIntegerShares> SecureSumProtocol::RunProtocol2(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, Rng* pair_secret_rng,
    const std::string& label_prefix) {
  return DrainOnError(network_,
                      RunProtocol2Impl(inputs, player_rngs, pair_secret_rng,
                                       label_prefix));
}

Result<BatchedModularShares> SecureSumProtocol::RunProtocol1Impl(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  PSI_RETURN_NOT_OK(ValidateInputs(inputs, player_rngs));
  const size_t m = players_.size();
  const size_t count = inputs[0].size();
  const BigUInt& S = config_.modulus_s;

  // Step 1 (local): player k splits each x_k into m uniform Z_S summands.
  // outgoing[k][j][c] = the share of counter c that player k gives player j.
  std::vector<std::vector<std::vector<BigUInt>>> outgoing(
      m, std::vector<std::vector<BigUInt>>(m, std::vector<BigUInt>(count)));
  for (size_t k = 0; k < m; ++k) {
    for (size_t c = 0; c < count; ++c) {
      BigUInt acc;
      for (size_t j = 1; j < m; ++j) {
        BigUInt share = BigUInt::RandomBelow(player_rngs[k], S);
        acc = ModAdd(acc, share, S);
        outgoing[k][j][c] = std::move(share);
      }
      // First share absorbs the difference so the m shares sum to x_k mod S.
      outgoing[k][0][c] = ModSub(BigUInt(inputs[k][c]) % S, acc, S);
    }
  }

  // Step 2 (one round): every player sends every other player its share.
  network_->BeginRound(label_prefix + "Prot1.Step2 (pairwise shares)");
  for (size_t k = 0; k < m; ++k) {
    for (size_t j = 0; j < m; ++j) {
      if (j == k) continue;
      PSI_RETURN_NOT_OK(network_->SendFramed(players_[k], players_[j],
                                             ProtocolId::kSecureSum,
                                             kStepPairwiseShares,
                                             PackShareVector(outgoing[k][j])));
    }
  }

  // Step 3 (local): player j sums what it kept and what it received.
  std::vector<std::vector<BigUInt>> sums(m,
                                         std::vector<BigUInt>(count));
  for (size_t j = 0; j < m; ++j) {
    sums[j] = outgoing[j][j];
    for (size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      PSI_ASSIGN_OR_RETURN(
          auto buf, network_->RecvValidated(players_[j], players_[k],
                                            ProtocolId::kSecureSum,
                                            kStepPairwiseShares));
      std::vector<BigUInt> received;
      PSI_RETURN_NOT_OK(UnpackShareVector(buf, &received));
      if (received.size() != count) {
        return Status::ProtocolError("share vector length mismatch");
      }
      for (size_t c = 0; c < count; ++c) {
        sums[j][c] = ModAdd(sums[j][c], received[c], S);
      }
    }
  }
  views_.player_share_vectors = sums;

  // Steps 4-5 (one round): players P3..Pm fold their sums into P2's.
  network_->BeginRound(label_prefix + "Prot1.Step4 (fold into P2)");
  for (size_t j = 2; j < m; ++j) {
    PSI_RETURN_NOT_OK(network_->SendFramed(players_[j], players_[1],
                                           ProtocolId::kSecureSum,
                                           kStepFoldIntoP2,
                                           PackShareVector(sums[j])));
  }
  for (size_t j = 2; j < m; ++j) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[1], players_[j],
                                          ProtocolId::kSecureSum,
                                          kStepFoldIntoP2));
    std::vector<BigUInt> received;
    PSI_RETURN_NOT_OK(UnpackShareVector(buf, &received));
    if (received.size() != count) {
      return Status::ProtocolError("folded share vector length mismatch");
    }
    for (size_t c = 0; c < count; ++c) {
      sums[1][c] = ModAdd(sums[1][c], received[c], S);
    }
  }

  BatchedModularShares out;
  out.s1 = std::move(sums[0]);
  out.s2 = std::move(sums[1]);
  return out;
}

Result<BatchedIntegerShares> SecureSumProtocol::RunProtocol2Impl(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, Rng* pair_secret_rng,
    const std::string& label_prefix) {
  PSI_ASSIGN_OR_RETURN(BatchedModularShares mod_shares,
                       RunProtocol1Impl(inputs, player_rngs, label_prefix));
  const size_t count = mod_shares.s1.size();
  const BigUInt& S = config_.modulus_s;
  const BigUInt r_bound = S - config_.input_bound_a;  // r in [0, S-A-1].

  // Step 2 (local at P2): one masking value per counter.
  PSI_SECRET std::vector<BigUInt> masks;
  masks.resize(count);
  for (auto& r : masks) r = BigUInt::RandomBelow(player_rngs[1], r_bound);

  // Batched refinement (Section 5.1): P1 and P2 permute the counter order
  // seen by the third party using their pre-shared pairwise secret.
  SecretPermutation perm =
      config_.use_secret_permutation
          ? SecretPermutation::Random(pair_secret_rng, count)
          : SecretPermutation::FromMapping([count] {
              std::vector<size_t> id(count);
              for (size_t i = 0; i < count; ++i) id[i] = i;
              return id;
            }()).ValueOrDie();

  std::vector<BigUInt> sent_s1(count), sent_masked_s2(count);
  for (size_t c = 0; c < count; ++c) {
    sent_s1[perm.Apply(c)] = mod_shares.s1[c];
    sent_masked_s2[perm.Apply(c)] = mod_shares.s2[c] + masks[c];
  }

  // Steps 3-4 (one round): both vectors travel to the third party.
  network_->BeginRound(label_prefix + "Prot2.Steps3-4 (to third party)");
  PSI_RETURN_NOT_OK(network_->SendFramed(players_[0], third_party_,
                                         ProtocolId::kSecureSum,
                                         kStepToThirdParty,
                                         PackShareVector(sent_s1)));
  PSI_RETURN_NOT_OK(network_->SendFramed(players_[1], third_party_,
                                         ProtocolId::kSecureSum,
                                         kStepToThirdParty,
                                         PackShareVector(sent_masked_s2)));

  // Step 5 (local at the third party): y = s1 + s2 + r, compare with S.
  PSI_ASSIGN_OR_RETURN(
      auto buf1, network_->RecvValidated(third_party_, players_[0],
                                         ProtocolId::kSecureSum,
                                         kStepToThirdParty));
  PSI_ASSIGN_OR_RETURN(
      auto buf2, network_->RecvValidated(third_party_, players_[1],
                                         ProtocolId::kSecureSum,
                                         kStepToThirdParty));
  std::vector<BigUInt> tp_s1, tp_masked;
  PSI_RETURN_NOT_OK(UnpackShareVector(buf1, &tp_s1));
  PSI_RETURN_NOT_OK(UnpackShareVector(buf2, &tp_masked));
  if (tp_s1.size() != count || tp_masked.size() != count) {
    return Status::ProtocolError("third party received mismatched batches");
  }
  views_.third_party_s1 = tp_s1;
  views_.third_party_masked_s2 = tp_masked;
  std::vector<bool> bits(count);
  for (size_t c = 0; c < count; ++c) {
    bits[c] = (tp_s1[c] + tp_masked[c]) >= S;
  }
  views_.comparison_bits = bits;

  // Step 6 (one round): the answers return to P2 (one bit per counter).
  network_->BeginRound(label_prefix + "Prot2.Step6 (comparison bits)");
  PSI_RETURN_NOT_OK(network_->SendFramed(third_party_, players_[1],
                                         ProtocolId::kSecureSum,
                                         kStepComparisonBits, PackBits(bits)));
  PSI_ASSIGN_OR_RETURN(
      auto bits_buf, network_->RecvValidated(players_[1], third_party_,
                                             ProtocolId::kSecureSum,
                                             kStepComparisonBits));
  std::vector<bool> received_bits;
  PSI_RETURN_NOT_OK(UnpackBits(bits_buf, &received_bits));
  if (received_bits.size() != count) {
    return Status::ProtocolError("comparison bit vector length mismatch");
  }

  // Steps 7-8 (local at P2): undo the permutation, apply the correction.
  BatchedIntegerShares out;
  out.s1 = std::move(mod_shares.s1);
  out.s2.resize(count);
  views_.p2_correction.assign(count, false);
  for (size_t c = 0; c < count; ++c) {
    bool correct = received_bits[perm.Apply(c)];
    views_.p2_correction[c] = correct;
    BigInt s2(mod_shares.s2[c]);
    if (correct) s2 -= BigInt(S);
    out.s2[c] = std::move(s2);
  }
  return out;
}

}  // namespace psi
