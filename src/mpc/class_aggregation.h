// Protocol 5 (Section 5.2): preprocessing for the non-exclusive case.
//
// Providers of one action class A_q obfuscate their class logs and hand them
// to a semi-trusted aggregator P-hat (another provider or the host), who
// computes the aggregate counters over the obfuscated identities and returns
// the nonzero ones to a representative provider. The representative undoes
// the obfuscation and from then on plays Protocol 4 on behalf of the class.
//
// Two obfuscation methods (both from the paper):
//  * kBasic: secret user permutation + secret action pseudonyms; timestamps
//    stay in the clear (P-hat may observe activity patterns over time).
//  * kEnhanced: additionally a shift cipher on timestamps over the cyclic
//    frame [0, T+h) and fake-user padding that equalizes the per-timestamp
//    record count, so every shift key is equally plausible to P-hat. We pad
//    *every* timestamp of the frame (see DESIGN.md §3's interpretation note:
//    padding only [0, T) would leave the h empty slots detectable).
//
// Fake records use fresh single-use action pseudonyms, so they never create
// follow pairs; every counter touching a fake user id is dropped by the
// representative, so correctness is unaffected.

#ifndef PSI_MPC_CLASS_AGGREGATION_H_
#define PSI_MPC_CLASS_AGGREGATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"
#include "mpc/link_influence_protocol.h"
#include "net/network.h"

namespace psi {

enum class ObfuscationMethod {
  kBasic,     ///< Hide identities, keep timestamps.
  kEnhanced,  ///< Also shift-cipher timestamps + fake-user padding.
};

/// \brief Protocol 5 parameters (public within the provider group).
struct Protocol5Config {
  uint64_t h = 4;          ///< Memory window (defines the cyclic frame T+h).
  ObfuscationMethod method = ObfuscationMethod::kEnhanced;
  size_t num_fake_users = 8;  ///< n' fake identities (enhanced mode).
  uint64_t time_frame_t = 0;  ///< Public T: every real timestamp is < T.
};

/// \brief Observations available to the aggregator, for privacy tests.
struct Protocol5Views {
  /// The obfuscated logs P-hat received, per group member.
  std::vector<std::vector<ActionRecord>> aggregator_logs;
};

/// \brief Orchestrates Protocol 5 for one action class.
class ClassAggregationProtocol {
 public:
  /// \param group the providers supporting this class; group[0] is the
  ///        representative who receives the aggregate counters.
  /// \param aggregator the semi-trusted P-hat (not in the group).
  ClassAggregationProtocol(Network* network, std::vector<PartyId> group,
                           PartyId aggregator, Protocol5Config config);

  /// \brief Runs the protocol.
  ///
  /// \param class_logs provider logs already filtered to this class's
  ///        actions (Protocol 5 step 1 removes them from the main logs).
  /// \param num_users the public user-id space size n.
  /// \param group_secret_rng key material shared by the group (derives the
  ///        secret permutation/injection, action pseudonyms and shift key);
  ///        hidden from the aggregator, never crosses the network.
  [[nodiscard]] Result<AggregatedClassCounters> Run(const std::vector<ActionLog>& class_logs,
                                      size_t num_users, Rng* group_secret_rng,
                                      const std::string& label_prefix);

  const Protocol5Views& views() const { return views_; }

 private:
  // The protocol body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<AggregatedClassCounters> RunImpl(
      const std::vector<ActionLog>& class_logs, size_t num_users,
      Rng* group_secret_rng, const std::string& label_prefix);

  Network* network_;
  std::vector<PartyId> group_;
  PartyId aggregator_;
  Protocol5Config config_;
  Protocol5Views views_;
};

/// \brief Splits a provider log into (class records, remainder) for class
/// `q` under `config` — Protocol 5 step 1.
std::pair<ActionLog, ActionLog> SplitOutClass(
    const ActionLog& log, const std::vector<uint32_t>& class_of_action,
    uint32_t q);

namespace internal {

/// \brief Sparse counters the aggregator computes over obfuscated
/// identities. Exposed for the malformed-input wire tests.
struct ObfuscatedCounters {
  std::unordered_map<uint32_t, uint64_t> a;               // user' -> count
  std::unordered_map<uint64_t, std::vector<uint64_t>> c;  // (i',j') -> c^l
};

std::vector<uint8_t> PackCounters(const ObfuscatedCounters& counters,
                                  uint64_t h);

/// \brief Decodes PackCounters output; rejects counts that cannot fit in the
/// buffer and trailing bytes.
[[nodiscard]] Status UnpackCounters(const std::vector<uint8_t>& buf,
                                    uint64_t h, ObfuscatedCounters* out);

}  // namespace internal

}  // namespace psi

#endif  // PSI_MPC_CLASS_AGGREGATION_H_
