// Section 6 pipeline: secure computation of the user influence scores.
//
// Protocol 6 gives H every propagation graph PG(alpha), from which H derives
// the numerator of Eq. (3) on its own. For the denominators a_i the paper
// notes "that computation is already covered by Protocol 4": the providers
// run batched Protocol 2 over the a_i counters and then the masked-share
// division step with the public constant 1 as denominator, so H obtains
// a_i = (r_i * a_i) / (r_i * 1) exactly.
//
// Note the scores themselves imply the a_i values (H knows the numerator and
// the quotient), so this reveal is exactly the information the output
// already contains — no excess leakage relative to the functionality.

#ifndef PSI_MPC_SECURE_USER_SCORE_H_
#define PSI_MPC_SECURE_USER_SCORE_H_

#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "influence/user_score.h"
#include "mpc/propagation_protocol.h"
#include "mpc/secure_sum.h"
#include "net/network.h"

namespace psi {

/// \brief Parameters of the secure user-score pipeline.
struct SecureScoreConfig {
  Protocol6Config protocol6;
  uint64_t epsilon_log2 = 40;  ///< Theorem 4.1 budget for the a_i shares.
  UserScoreOptions score_options;
};

/// \brief Orchestrates Protocol 6 + the a_i reveal + local scoring at H.
class SecureUserScoreProtocol {
 public:
  SecureUserScoreProtocol(Network* network, PartyId host,
                          std::vector<PartyId> providers,
                          SecureScoreConfig config);

  /// \brief Returns score(v_i) for every user, as computed by the host.
  [[nodiscard]] Result<std::vector<double>> Run(const SocialGraph& host_graph,
                                  size_t num_actions,
                                  const std::vector<ActionLog>& provider_logs,
                                  Rng* host_rng,
                                  const std::vector<Rng*>& provider_rngs,
                                  Rng* pair_secret_rng);

  /// \brief The a_i values H reconstructed during the last run.
  const std::vector<uint64_t>& revealed_action_counts() const {
    return revealed_a_;
  }

  const Protocol6Views& protocol6_views() const { return p6_views_; }

 private:
  // The pipeline body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<std::vector<double>> RunImpl(
      const SocialGraph& host_graph, size_t num_actions,
      const std::vector<ActionLog>& provider_logs, Rng* host_rng,
      const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng);

  Network* network_;
  PartyId host_;
  std::vector<PartyId> providers_;
  SecureScoreConfig config_;
  std::vector<uint64_t> revealed_a_;
  Protocol6Views p6_views_;
};

}  // namespace psi

#endif  // PSI_MPC_SECURE_USER_SCORE_H_
