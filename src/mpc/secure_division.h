// Protocol 3 (Section 4.2): secure division of private integers.
//
// P1 holds a1, P2 holds a2, both in [0, A]. The host H must learn the real
// quotient a1/a2 (0 when a2 == 0) and nothing about a1, a2 beyond it. The
// two parties jointly draw M ~ Z (pdf mu^-2 on [1, inf)) and r ~ U(0, M),
// then send r*a1 and r*a2; H divides. Theorems 4.2-4.4 characterize the
// residual leakage (see privacy/posterior.h).

#ifndef PSI_MPC_SECURE_DIVISION_H_
#define PSI_MPC_SECURE_DIVISION_H_

#include <string>

#include "common/random.h"
#include "common/status.h"
#include "net/network.h"

namespace psi {

/// \brief What the host observed during a Protocol 3 run.
struct SecureDivisionViews {
  double masked_a1 = 0.0;  ///< r * a1
  double masked_a2 = 0.0;  ///< r * a2
};

/// \brief One secure division between P1, P2 and the host.
class SecureDivisionProtocol {
 public:
  SecureDivisionProtocol(Network* network, PartyId p1, PartyId p2,
                         PartyId host)
      : network_(network), p1_(p1), p2_(p2), host_(host) {}

  /// \brief Runs the protocol; returns the quotient as computed by H.
  [[nodiscard]] Result<double> Run(uint64_t a1, uint64_t a2, Rng* rng1, Rng* rng2,
                     const std::string& label_prefix);

  const SecureDivisionViews& views() const { return views_; }

 private:
  // The protocol body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<double> RunImpl(uint64_t a1, uint64_t a2, Rng* rng1,
                                       Rng* rng2,
                                       const std::string& label_prefix);

  Network* network_;
  PartyId p1_;
  PartyId p2_;
  PartyId host_;
  SecureDivisionViews views_;
};

}  // namespace psi

#endif  // PSI_MPC_SECURE_DIVISION_H_
