// Protocols 1 and 2 (Section 4.1): secure computation of additive shares of a
// sum of private integers.
//
// Protocol 1 (Benaloh): m players, each holding x_k in [0, A] with
// x = sum x_k <= A, end with P1 holding a uniformly random s1 in Z_S and P2
// holding s2 such that s1 + s2 == x (mod S). Perfectly secure.
//
// Protocol 2 upgrades the modular shares to *integer* shares
// (s1 + s2 == x over Z) by asking a curious-but-honest third party (P3, or
// the host when m == 2) whether s1 + s2 + r >= S for a random mask
// r in [0, S-A-1] chosen by P2. Theorem 4.1 bounds what P2/P3 can learn.
//
// Both protocols run *batched*: Protocol 4 needs shares of n + |E'| counters
// and executes all instances in parallel inside the same communication
// rounds (Section 5.1). In batched mode P1 and P2 can permute the counter
// order seen by the third party with a secret permutation, which makes the
// Theorem 4.1 leakage unattributable to any specific counter.

#ifndef PSI_MPC_SECURE_SUM_H_
#define PSI_MPC_SECURE_SUM_H_

#include <string>
#include <vector>

#include "bigint/biguint.h"
#include "common/random.h"
#include "common/status.h"
#include "mpc/shares.h"
#include "net/network.h"

namespace psi {

/// \brief Parameters shared by all players of a secure-sum execution.
struct SecureSumConfig {
  BigUInt modulus_s;       ///< The share modulus S (must be >> A).
  BigUInt input_bound_a;   ///< A: every input and every sum lies in [0, A].
  bool use_secret_permutation = true;  ///< Batched-mode P3 blinding.
};

/// \brief Smallest power-of-two modulus satisfying the Theorem 4.1 guidance
/// S >= A * (1 + 2 * num_counters / epsilon) for epsilon = 2^-epsilon_log2:
/// the probability that P2 or P3 learns any bound on any of the
/// `num_counters` batched sums is then at most epsilon.
BigUInt RecommendedModulus(const BigUInt& bound_a, uint64_t num_counters,
                           uint64_t epsilon_log2);

/// \brief Everything the non-input parties observed, recorded so tests can
/// verify the Theorem 4.1 leakage characterization empirically.
struct SecureSumViews {
  /// Values P3 received, in transmitted (permuted) order.
  std::vector<BigUInt> third_party_s1;
  std::vector<BigUInt> third_party_masked_s2;  ///< s2 + r per slot.
  /// Comparison answers y >= S per transmitted slot.
  std::vector<bool> comparison_bits;
  /// Correction flags per original counter (what P2 learned in step 6).
  std::vector<bool> p2_correction;
  /// Modular share vectors each player held after Protocol 1 (player-major).
  std::vector<std::vector<BigUInt>> player_share_vectors;
};

/// \brief Orchestrates batched Protocol 1 / Protocol 2 over the simulated
/// network. Player 0 acts as P1, player 1 as P2.
class SecureSumProtocol {
 public:
  /// \param players the m service providers, protocol order (P1, P2, ...).
  /// \param third_party the comparison helper of Protocol 2 (P3 or H).
  SecureSumProtocol(Network* network, std::vector<PartyId> players,
                    PartyId third_party, SecureSumConfig config);

  /// \brief Batched Protocol 1. inputs[k][c] is player k's private value for
  /// counter c; all vectors must share one length. Two communication rounds.
  [[nodiscard]] Result<BatchedModularShares> RunProtocol1(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  /// \brief Batched Protocol 2: Protocol 1 plus the integer-correction
  /// rounds. `pair_secret_rng` is key material pre-shared between P1 and P2
  /// (their pairwise secure channel) used to derive the secret permutation;
  /// it never crosses the metered network.
  [[nodiscard]] Result<BatchedIntegerShares> RunProtocol2(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, Rng* pair_secret_rng,
      const std::string& label_prefix);

  const SecureSumViews& views() const { return views_; }

 private:
  // The protocol bodies; the public entries drain mailboxes on error.
  [[nodiscard]] Result<BatchedModularShares> RunProtocol1Impl(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);
  [[nodiscard]] Result<BatchedIntegerShares> RunProtocol2Impl(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, Rng* pair_secret_rng,
      const std::string& label_prefix);

  [[nodiscard]] Status ValidateInputs(const std::vector<std::vector<uint64_t>>& inputs,
                        const std::vector<Rng*>& player_rngs) const;

  Network* network_;
  std::vector<PartyId> players_;
  PartyId third_party_;
  SecureSumConfig config_;
  SecureSumViews views_;
};

}  // namespace psi

#endif  // PSI_MPC_SECURE_SUM_H_
