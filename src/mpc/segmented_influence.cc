#include "mpc/segmented_influence.h"

#include <cmath>
#include <unordered_map>

#include "common/annotations.h"
#include "common/serialize.h"
#include "graph/generators.h"
#include "mpc/joint_random.h"
#include "mpc/secure_sum.h"
#include "mpc/wire.h"

namespace psi {

namespace {

uint64_t PairKey(NodeId i, NodeId j) {
  return (static_cast<uint64_t>(i) << 32) | j;
}

}  // namespace

SegmentedInfluenceProtocol::SegmentedInfluenceProtocol(
    Network* network, PartyId host, std::vector<PartyId> providers,
    Protocol4Config config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(std::move(config)) {}

Result<SegmentedLinkInfluence> SegmentedInfluenceProtocol::Run(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs,
    const std::vector<uint32_t>& segment_of_action, uint32_t num_segments,
    Rng* host_rng, const std::vector<Rng*>& provider_rngs,
    Rng* pair_secret_rng) {
  return DrainOnError(
      network_, RunImpl(host_graph, num_actions_public, provider_logs,
                        segment_of_action, num_segments, host_rng,
                        provider_rngs, pair_secret_rng));
}

Result<SegmentedLinkInfluence> SegmentedInfluenceProtocol::RunImpl(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs,
    const std::vector<uint32_t>& segment_of_action, uint32_t num_segments,
    Rng* host_rng, const std::vector<Rng*>& provider_rngs,
    Rng* pair_secret_rng) {
  const size_t m = providers_.size();
  const size_t n = host_graph.num_nodes();
  const size_t g_count = num_segments;
  if (m < 2) return Status::InvalidArgument("need at least two providers");
  if (g_count == 0) return Status::InvalidArgument("need >= 1 segment");
  if (provider_logs.size() != m || provider_rngs.size() != m) {
    return Status::InvalidArgument("one log and rng per provider");
  }
  if (config_.weights.has_value()) {
    return Status::Unimplemented(
        "segmented protocol currently supports the Eq. (1) definition");
  }

  // ---- Step 1-2: Omega_E', as in Protocol 4. ----
  PSI_ASSIGN_OR_RETURN(
      std::vector<Arc> omega,
      ObfuscateArcSet(host_rng, host_graph, config_.obfuscation_factor));
  const size_t q = omega.size();
  network_->BeginRound("SEG.Step2 (H -> P_k: Omega_E')");
  auto packed = wire::PackArcs(omega);
  for (size_t k = 0; k < m; ++k) {
    PSI_RETURN_NOT_OK(network_->Send(host_, providers_[k], packed));
  }
  std::vector<std::vector<Arc>> provider_omega(m);
  for (size_t k = 0; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(auto buf, network_->Recv(providers_[k], host_));
    PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega[k]));
  }

  // ---- Local: per-segment counter blocks. Layout:
  //      [a^0 .. a^{G-1} | b^0 .. b^{G-1}], each a-block n wide, each
  //      b-block q wide. ----
  const size_t a_total = g_count * n;
  const size_t total = a_total + g_count * q;
  std::vector<std::vector<uint64_t>> inputs(m);
  for (size_t k = 0; k < m; ++k) {
    inputs[k].reserve(total);
    std::vector<ActionLog> filtered(g_count);
    for (uint32_t g = 0; g < g_count; ++g) {
      filtered[g] = FilterLogBySegment(provider_logs[k], segment_of_action, g);
      auto a = ComputeActionCounts(filtered[g], n);
      inputs[k].insert(inputs[k].end(), a.begin(), a.end());
    }
    for (uint32_t g = 0; g < g_count; ++g) {
      auto b = ComputeFollowCounts(filtered[g], provider_omega[k], config_.h);
      inputs[k].insert(inputs[k].end(), b.begin(), b.end());
    }
  }

  // ---- Batched Protocol 2 over all G(n + q) counters. ----
  BigUInt bound(num_actions_public);
  BigUInt modulus =
      config_.modulus_s.has_value()
          ? *config_.modulus_s
          : RecommendedModulus(bound, total, config_.epsilon_log2);
  SecureSumConfig sum_config;
  sum_config.modulus_s = modulus;
  sum_config.input_bound_a = bound;
  sum_config.use_secret_permutation = config_.use_secret_permutation;
  PartyId third_party = (m > 2) ? providers_[2] : host_;
  SecureSumProtocol secure_sum(network_, providers_, third_party, sum_config);
  PSI_ASSIGN_OR_RETURN(
      BatchedIntegerShares shares,
      secure_sum.RunProtocol2(inputs, provider_rngs, pair_secret_rng, "SEG."));

  // ---- Per-(user, segment) masks. ----
  PSI_ASSIGN_OR_RETURN(
      auto u_m,
      JointUniformBatch(network_, providers_[0], providers_[1], a_total,
                        provider_rngs[0], provider_rngs[1],
                        "SEG.Step5 (joint M_{i,g})"));
  std::vector<double> m_values = ToZDistribution(u_m);
  PSI_ASSIGN_OR_RETURN(
      auto u_r,
      JointUniformBatch(network_, providers_[0], providers_[1], a_total,
                        provider_rngs[0], provider_rngs[1],
                        "SEG.Step6 (joint r_{i,g})"));
  PSI_ASSIGN_OR_RETURN(auto r_values, ToUniformBelow(u_r, m_values));
  PSI_SECRET std::vector<BigUInt> masks;
  masks.resize(a_total);
  for (size_t i = 0; i < a_total; ++i) {
    PSI_ASSIGN_OR_RETURN(
        masks[i],
        BigUIntFromDouble(std::ldexp(r_values[i],
                                     static_cast<int>(config_.fraction_bits))));
    // psi-lint: allow(secret-flow) zero test only nudges the mask to 1 so the later division is defined; it leaks one bit with probability ~2^-fraction_bits
    if (masks[i].IsZero()) masks[i] = BigUInt(1);
  }
  // The mask governing counter c: block (g, i) for a-counters, block
  // (g, source user) for b-counters.
  auto mask_of_counter = [&](size_t c) -> const BigUInt& {
    if (c < a_total) return masks[c];
    size_t rel = c - a_total;
    size_t g = rel / q;
    NodeId src = omega[rel % q].from;
    return masks[g * n + src];
  };

  // ---- Masked shares to H. ----
  std::vector<BigUInt> masked1(total);
  std::vector<BigInt> masked2(total);
  for (size_t c = 0; c < total; ++c) {
    masked1[c] = mask_of_counter(c) * shares.s1[c];
    masked2[c] = BigInt(mask_of_counter(c)) * shares.s2[c];
  }
  network_->BeginRound("SEG.Steps7-8 (masked shares -> H)");
  {
    BinaryWriter w1, w2;
    w1.WriteVarU64(total);
    w2.WriteVarU64(total);
    for (size_t c = 0; c < total; ++c) {
      WriteBigUInt(&w1, masked1[c]);
      WriteBigInt(&w2, masked2[c]);
    }
    PSI_RETURN_NOT_OK(network_->Send(providers_[0], host_, w1.TakeBuffer()));
    PSI_RETURN_NOT_OK(network_->Send(providers_[1], host_, w2.TakeBuffer()));
  }

  // ---- Host: recombine, divide per segment. ----
  PSI_ASSIGN_OR_RETURN(auto buf1, network_->Recv(host_, providers_[0]));
  PSI_ASSIGN_OR_RETURN(auto buf2, network_->Recv(host_, providers_[1]));
  std::vector<BigUInt> recombined(total);
  {
    BinaryReader r1(buf1), r2(buf2);
    uint64_t c1, c2;
    PSI_RETURN_NOT_OK(r1.ReadVarU64(&c1));
    PSI_RETURN_NOT_OK(r2.ReadVarU64(&c2));
    if (c1 != total || c2 != total) {
      return Status::ProtocolError("masked vector length mismatch");
    }
    for (size_t c = 0; c < total; ++c) {
      BigUInt v1;
      BigInt v2;
      PSI_RETURN_NOT_OK(ReadBigUInt(&r1, &v1));
      PSI_RETURN_NOT_OK(ReadBigInt(&r2, &v2));
      BigInt value = BigInt(v1) + v2;
      if (value.IsNegative()) {
        return Status::ProtocolError("negative recombined counter");
      }
      recombined[c] = value.magnitude();
    }
  }

  std::unordered_map<uint64_t, size_t> omega_index;
  omega_index.reserve(q);
  for (size_t p = 0; p < q; ++p) {
    omega_index.emplace(PairKey(omega[p].from, omega[p].to), p);
  }
  SegmentedLinkInfluence out;
  out.per_segment.resize(g_count);
  for (uint32_t g = 0; g < g_count; ++g) {
    auto& li = out.per_segment[g];
    li.pairs = host_graph.arcs();
    li.p.resize(li.pairs.size());
    for (size_t e = 0; e < li.pairs.size(); ++e) {
      const Arc& arc = li.pairs[e];
      auto it = omega_index.find(PairKey(arc.from, arc.to));
      if (it == omega_index.end()) {
        return Status::ProtocolError("arc of E missing from Omega");
      }
      const BigUInt& denom = recombined[g * n + arc.from];
      const BigUInt& numer = recombined[a_total + g * q + it->second];
      li.p[e] = denom.IsZero() ? 0.0 : DivideToDouble(numer, denom);
    }
  }
  return out;
}

}  // namespace psi
