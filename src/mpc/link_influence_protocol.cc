#include "mpc/link_influence_protocol.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/annotations.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "mpc/homomorphic_sum.h"
#include "mpc/joint_random.h"
#include "mpc/wire.h"

namespace psi {

namespace {

uint64_t PairKey(NodeId i, NodeId j) {
  return (static_cast<uint64_t>(i) << 32) | j;
}

// Step tags for ProtocolId::kLinkInfluence frames.
constexpr uint16_t kStepOmega = 2;          // H -> P_k: Omega_E'.
constexpr uint16_t kStepMaskedShares = 7;   // P1/P2 -> H: masked shares.

// SessionState keys of the checkpointed stage machine. Each party persists
// only what it holds in the real protocol: H the published arc set and the
// masked shares it received; P1/P2 their integer shares and the joint masks;
// every provider its validated Omega_E' copy and counter vector.
constexpr char kKeyOmega[] = "omega";
constexpr char kKeyCounters[] = "counters";
constexpr char kKeyShare1[] = "s1";
constexpr char kKeyShare2[] = "s2";
constexpr char kKeyMasks[] = "masks";
constexpr char kKeyMasked1[] = "m1";
constexpr char kKeyMasked2[] = "m2";
// Stage-program inputs staged into each provider's state before the run:
// the public counter config and the provider's own action log. They
// checkpoint (and ship to the provider's daemon) with everything else.
constexpr char kKeyExecCfg[] = "exec.cfg";
constexpr char kKeyExecLog[] = "exec.log";

// Registry name of the per-provider counter stage program.
constexpr char kProgramCounters[] = "p4/counters";

// One provider's counter computation over [a | numerators]: a pure function
// of the provider's SessionState (omega, exec.cfg, exec.log) — it draws no
// randomness and touches no wire, which is what lets it run in-process, on
// the provider's psid daemon, or replayed after a crash with identical
// output. Providers feeding Protocol-5 aggregates in keep a plain local
// stage body instead (the aggregates are in-memory only).
[[nodiscard]] Status CountersStageProgram(StageProgramContext* ctx) {
  if (ctx->state == nullptr || !ctx->rngs.empty()) {
    return Status::FailedPrecondition(
        "p4/counters wants one party state and no RNG streams");
  }
  SessionState& st = *ctx->state;

  PSI_ASSIGN_OR_RETURN(const std::vector<uint8_t> cfg_buf, st.Get(kKeyExecCfg));
  BinaryReader cr(cfg_buf);
  uint64_t num_users = 0;
  Protocol4Config cfg;
  uint8_t has_weights = 0;
  PSI_RETURN_NOT_OK(cr.ReadU64(&num_users));
  PSI_RETURN_NOT_OK(cr.ReadU64(&cfg.h));
  PSI_RETURN_NOT_OK(cr.ReadU64(&cfg.weight_scale));
  PSI_RETURN_NOT_OK(cr.ReadU8(&has_weights));
  if (has_weights > 1) {
    return Status::SerializationError("p4/counters: malformed exec.cfg");
  }
  if (has_weights == 1) {
    uint64_t count = 0;
    PSI_RETURN_NOT_OK(cr.ReadCount(&count, /*min_bytes_per_element=*/8));
    TemporalWeights weights;
    weights.w.resize(count);
    for (double& w : weights.w) PSI_RETURN_NOT_OK(cr.ReadDouble(&w));
    cfg.weights = std::move(weights);
  }
  if (!cr.AtEnd()) {
    return Status::SerializationError("p4/counters: trailing exec.cfg bytes");
  }

  std::vector<Arc> provider_omega;
  {
    PSI_ASSIGN_OR_RETURN(const auto buf, st.Get(kKeyOmega));
    PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega));
  }
  ActionLog log;
  {
    PSI_ASSIGN_OR_RETURN(const auto buf, st.Get(kKeyExecLog));
    std::vector<ActionRecord> records;
    PSI_RETURN_NOT_OK(wire::UnpackRecords(buf, &records));
    for (const ActionRecord& rec : records) log.Add(rec);
  }

  PSI_ASSIGN_OR_RETURN(std::vector<uint64_t> counters,
                       ComputeProviderCounterVector(log, num_users,
                                                    provider_omega, cfg,
                                                    /*extra=*/nullptr));
  st.Put(kKeyCounters, wire::PackU64s(counters));
  return Status::OK();
}

}  // namespace

void RegisterLinkInfluenceStagePrograms() {
  static std::once_flag once;
  std::call_once(once, [] {
    StageProgramRegistry::Global().Register(kProgramCounters,
                                            CountersStageProgram);
  });
}

uint64_t AggregatedClassCounters::FollowCount(NodeId i, NodeId j,
                                              uint64_t h) const {
  auto it = c_by_delay.find(PairKey(i, j));
  if (it == c_by_delay.end()) return 0;
  uint64_t sum = 0;
  for (uint64_t l = 0; l < h && l < it->second.size(); ++l) {
    sum += it->second[l];
  }
  return sum;
}

Result<std::vector<uint64_t>> ComputeProviderCounterVector(
    const ActionLog& log, size_t num_users, const std::vector<Arc>& pairs,
    const Protocol4Config& config, const AggregatedClassCounters* extra) {
  std::vector<uint64_t> counters;
  counters.reserve(num_users + pairs.size());

  // Denominator block: a_i.
  auto a = ComputeActionCounts(log, num_users);
  if (extra != nullptr) {
    if (extra->a.size() != num_users) {
      return Status::InvalidArgument("extra counters sized for wrong n");
    }
    for (size_t i = 0; i < num_users; ++i) a[i] += extra->a[i];
  }
  counters.insert(counters.end(), a.begin(), a.end());

  // Numerator block: b^h_ij (Eq. 1) or scaled sum_l W_l c^l_ij (Eq. 2).
  if (!config.weights.has_value()) {
    auto b = ComputeFollowCounts(log, pairs, config.h);
    if (extra != nullptr) {
      for (size_t p = 0; p < pairs.size(); ++p) {
        b[p] += extra->FollowCount(pairs[p].from, pairs[p].to, config.h);
      }
    }
    counters.insert(counters.end(), b.begin(), b.end());
  } else {
    const auto& weights = *config.weights;
    if (weights.h() != config.h) {
      return Status::InvalidArgument("weights length must equal h");
    }
    auto scaled = weights.Scaled(config.weight_scale);
    auto c = ComputeExactDelayCounts(log, pairs, config.h);
    for (size_t p = 0; p < pairs.size(); ++p) {
      uint64_t sum = 0;
      for (uint64_t l = 0; l < config.h; ++l) {
        sum += scaled[l] * c[p][l];
      }
      if (extra != nullptr) {
        auto it = extra->c_by_delay.find(PairKey(pairs[p].from, pairs[p].to));
        if (it != extra->c_by_delay.end()) {
          for (uint64_t l = 0; l < config.h && l < it->second.size(); ++l) {
            sum += scaled[l] * it->second[l];
          }
        }
      }
      counters.push_back(sum);
    }
  }
  return counters;
}

LinkInfluenceProtocol::LinkInfluenceProtocol(Network* network, PartyId host,
                                             std::vector<PartyId> providers,
                                             Protocol4Config config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(std::move(config)) {}

Result<LinkInfluence> LinkInfluenceProtocol::Run(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng,
    const std::vector<const AggregatedClassCounters*>& extras) {
  RetryPolicy single_attempt;
  single_attempt.max_attempts = 1;
  return RunSession(host_graph, num_actions_public, provider_logs, host_rng,
                    provider_rngs, pair_secret_rng, single_attempt,
                    /*stats_out=*/nullptr, extras);
}

Result<LinkInfluence> LinkInfluenceProtocol::RunSession(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng,
    const RetryPolicy& retry, SessionStats* stats_out,
    const std::vector<const AggregatedClassCounters*>& extras,
    SessionOrchestrator* orchestrator) {
  RegisterLinkInfluenceStagePrograms();
  const size_t m = providers_.size();
  const size_t n = host_graph.num_nodes();
  if (m < 2) return Status::InvalidArgument("Protocol 4 needs >= 2 providers");
  if (provider_logs.size() != m || provider_rngs.size() != m) {
    return Status::InvalidArgument("one log and rng per provider");
  }
  if (!extras.empty() && extras.size() != m) {
    return Status::InvalidArgument("extras must be empty or one per provider");
  }

  std::vector<PartyId> parties;
  parties.reserve(m + 1);
  parties.push_back(host_);
  parties.insert(parties.end(), providers_.begin(), providers_.end());
  ProtocolSession session("p4", network_, std::move(parties));
  session.RegisterRng("host", host_rng);
  for (size_t k = 0; k < m; ++k) {
    session.RegisterRng("provider" + std::to_string(k), provider_rngs[k]);
  }
  if (pair_secret_rng != nullptr) {
    session.RegisterRng("pair-secret", pair_secret_rng);
  }

  // Stage the per-provider program inputs: the public counter config and
  // each provider's own log, durable in that provider's state from stage 0
  // (so the initial checkpoint and any daemon-shipped restore carry them).
  BinaryWriter cfg;
  cfg.WriteU64(n);
  cfg.WriteU64(config_.h);
  cfg.WriteU64(config_.weight_scale);
  cfg.WriteU8(config_.weights.has_value() ? 1 : 0);
  if (config_.weights.has_value()) {
    cfg.WriteVarU64(config_.weights->w.size());
    for (double w : config_.weights->w) cfg.WriteDouble(w);
  }
  const std::vector<uint8_t> cfg_buf = cfg.TakeBuffer();
  for (size_t k = 0; k < m; ++k) {
    SessionState& st = session.PartyState(providers_[k]);
    st.Put(kKeyExecCfg, cfg_buf);
    st.Put(kKeyExecLog, wire::PackRecords(provider_logs[k].records()));
  }

  // Stage bodies are replayable: inputs come from the parties' SessionStates
  // (written by predecessor stages), randomness only from registered RNGs.
  // A replay after crash-restart therefore re-derives bitwise the same
  // transcript the fault-free run produces.

  // ---- Steps 1-2: H publishes the obfuscated arc index set Omega_E'. ----
  session.AddStage("omega", [&, this]() -> Status {
    PSI_ASSIGN_OR_RETURN(
        std::vector<Arc> omega,
        ObfuscateArcSet(host_rng, host_graph, config_.obfuscation_factor));
    views_.omega = omega;

    network_->BeginRound("P4.Step2 (H -> P_k: Omega_E')");
    auto packed_omega = wire::PackArcs(omega);
    for (size_t k = 0; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->SendFramed(host_, providers_[k],
                                             ProtocolId::kLinkInfluence,
                                             kStepOmega, packed_omega));
    }
    session.PartyState(host_).Put(kKeyOmega, packed_omega);
    // Every provider decodes and validates the arc set it received.
    for (size_t k = 0; k < m; ++k) {
      PSI_ASSIGN_OR_RETURN(
          auto buf, network_->RecvValidated(providers_[k], host_,
                                            ProtocolId::kLinkInfluence,
                                            kStepOmega));
      std::vector<Arc> provider_omega;
      PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega));
      for (const Arc& a : provider_omega) {
        if (a.from >= n || a.to >= n) {
          return Status::ProtocolError("Omega_E' arc endpoint out of range");
        }
      }
      session.PartyState(providers_[k]).Put(kKeyOmega, std::move(buf));
    }
    return Status::OK();
  });

  // ---- Local: provider counter vectors over [a | numerators]. One stage
  // per provider, each a registered stage program placed on that provider:
  // the base orchestrator (and the simulator) runs it in-process, a
  // RemoteSessionOrchestrator ships it to the provider's own psid daemon.
  // The stage draws no randomness and touches no wire, so the split is
  // transcript-invariant versus the old single "counters" stage. A provider
  // fed Protocol-5 aggregates keeps a plain local body — the aggregates are
  // in-memory only, never serialized into its SessionState.
  for (size_t k = 0; k < m; ++k) {
    const std::string stage_name = "counters-P" + std::to_string(k);
    if (extras.empty() || extras[k] == nullptr) {
      RemoteStageSpec spec;
      spec.party = providers_[k];
      spec.program = kProgramCounters;
      session.AddRemoteStage(stage_name, std::move(spec));
    } else {
      // psi-lint: allow(channel-schedule) the name is a pure function of the provider index k, so it is stable across runs and resumable
      session.AddStage(stage_name, [&, this, k]() -> Status {
        PSI_ASSIGN_OR_RETURN(auto buf,
                             session.PartyState(providers_[k]).Get(kKeyOmega));
        std::vector<Arc> provider_omega;
        PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega));
        PSI_ASSIGN_OR_RETURN(
            std::vector<uint64_t> counters,
            ComputeProviderCounterVector(provider_logs[k], n, provider_omega,
                                         config_, extras[k]));
        session.PartyState(providers_[k])
            .Put(kKeyCounters, wire::PackU64s(counters));
        return Status::OK();
      });
    }
  }

  // ---- Steps 3-4: aggregate all n + q counters into integer shares. ----
  session.AddStage("aggregate", [&, this]() -> Status {
    std::vector<std::vector<uint64_t>> inputs(m);
    for (size_t k = 0; k < m; ++k) {
      PSI_ASSIGN_OR_RETURN(
          auto buf, session.PartyState(providers_[k]).Get(kKeyCounters));
      PSI_RETURN_NOT_OK(wire::UnpackU64s(buf, &inputs[k]));
    }
    const size_t q = inputs[0].size() - n;

    // Counter bound A (public): |A| actions, times the weight scale ceiling
    // for the Eq. (2) variant.
    BigUInt bound(num_actions_public);
    if (config_.weights.has_value()) {
      bound = bound * BigUInt(config_.weight_scale) * BigUInt(config_.h);
    }

    // Packed Paillier aggregation applies only when the public bound A holds
    // for every actual input (never assume — a violation would silently
    // corrupt neighbouring slots) and a whole slot fits the key. The
    // geometry check runs at paillier_bits - 2 usable bits because the
    // generated modulus may come out one bit short of the nominal size.
    views_.used_packed_aggregation = false;
    views_.packed_slots = 1;
    bool pack = config_.aggregation == P4Aggregation::kPaillierPacked;
    if (pack) {
      for (const auto& v : inputs) {
        for (uint64_t x : v) {
          if (BigUInt(x) > bound) {
            pack = false;  // bound not proven: fall back to Protocol 2.
            break;
          }
        }
        if (!pack) break;
      }
    }
    if (pack && config_.paillier_bits >= 2) {
      pack = HomomorphicSumPackedCodec(config_.paillier_bits - 2, bound, m,
                                       config_.epsilon_log2)
                 .ok();
    }

    BatchedIntegerShares shares;
    if (pack) {
      HomomorphicSumConfig sum_config;
      sum_config.paillier_bits = config_.paillier_bits;
      sum_config.counter_bound = bound;
      sum_config.packing_epsilon_log2 = config_.epsilon_log2;
      HomomorphicSumProtocol hsum(network_, providers_, sum_config);
      PSI_ASSIGN_OR_RETURN(
          shares, hsum.RunInteger(inputs, provider_rngs, "P4."));
      session.MeterCryptoOps(hsum.last_run_crypto_ops());
      modulus_ = hsum.modulus();
      views_.used_packed_aggregation = true;
      views_.packed_slots = hsum.last_run_slots();
    } else {
      modulus_ = config_.modulus_s.has_value()
                     ? *config_.modulus_s
                     : RecommendedModulus(bound, n + q, config_.epsilon_log2);
      SecureSumConfig sum_config;
      sum_config.modulus_s = modulus_;
      sum_config.input_bound_a = bound;
      sum_config.use_secret_permutation = config_.use_secret_permutation;
      PartyId third_party = (m > 2) ? providers_[2] : host_;
      SecureSumProtocol secure_sum(network_, providers_, third_party,
                                   sum_config);
      PSI_ASSIGN_OR_RETURN(
          shares,
          secure_sum.RunProtocol2(inputs, provider_rngs, pair_secret_rng,
                                  "P4."));
      views_.secure_sum = secure_sum.views();
    }
    session.PartyState(providers_[0])
        .Put(kKeyShare1, wire::PackBigUInts(shares.s1));
    session.PartyState(providers_[1])
        .Put(kKeyShare2, wire::PackBigInts(shares.s2));
    return Status::OK();
  });

  // ---- Steps 5-6: joint per-user masks M_i ~ Z and r_i ~ U(0, M_i). ----
  session.AddStage("masks", [&, this]() -> Status {
    PSI_ASSIGN_OR_RETURN(
        auto u_m, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                    provider_rngs[0], provider_rngs[1],
                                    "P4.Step5 (joint M_i)"));
    std::vector<double> m_values = ToZDistribution(u_m);
    PSI_ASSIGN_OR_RETURN(
        auto u_r, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                    provider_rngs[0], provider_rngs[1],
                                    "P4.Step6 (joint r_i)"));
    PSI_ASSIGN_OR_RETURN(auto r_values, ToUniformBelow(u_r, m_values));

    // Fixed-point masks R_i = floor(r_i * 2^fraction_bits), never zero.
    PSI_SECRET std::vector<BigUInt> masks;
    masks.resize(n);
    for (size_t i = 0; i < n; ++i) {
      PSI_ASSIGN_OR_RETURN(
          masks[i],
          BigUIntFromDouble(
              std::ldexp(r_values[i],
                         static_cast<int>(config_.fraction_bits))));
      // psi-lint: allow(secret-flow) zero test only nudges the mask to 1 so the later division is defined; it leaks one bit with probability ~2^-fraction_bits
      if (masks[i].IsZero()) masks[i] = BigUInt(1);
    }
    auto packed_masks = wire::PackBigUInts(masks);
    session.PartyState(providers_[0]).Put(kKeyMasks, packed_masks);
    session.PartyState(providers_[1]).Put(kKeyMasks, std::move(packed_masks));
    return Status::OK();
  });

  // ---- Steps 7-8: masked shares travel to H (one message per party). ----
  session.AddStage("masked-shares", [&, this]() -> Status {
    std::vector<Arc> omega;
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(providers_[0]).Get(kKeyOmega));
      PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &omega));
    }
    const size_t q = omega.size();
    const size_t total = n + q;
    PSI_SECRET std::vector<BigUInt> masks;
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(providers_[0]).Get(kKeyMasks));
      PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &masks));
    }
    std::vector<BigUInt> s1;
    std::vector<BigInt> s2;
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(providers_[0]).Get(kKeyShare1));
      PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &s1));
    }
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(providers_[1]).Get(kKeyShare2));
      PSI_RETURN_NOT_OK(wire::UnpackBigInts(buf, &s2));
    }
    if (masks.size() != n || s1.size() != total || s2.size() != total) {
      return Status::Internal("checkpointed stage state has wrong geometry");
    }

    // The user governing counter c: i for a_i (c < n), arc source for pairs.
    auto mask_of_counter = [&](size_t c) -> const BigUInt& {
      return c < n ? masks[c] : masks[omega[c - n].from];
    };

    // Pure big-integer products over already-drawn masks: the per-link loop
    // fans out with no effect on the transcript.
    std::vector<BigUInt> masked1(total);
    std::vector<BigInt> masked2(total);
    ParallelFor(total, [&](size_t c) {
      masked1[c] = mask_of_counter(c) * s1[c];
      masked2[c] = BigInt(mask_of_counter(c)) * s2[c];
    });
    network_->BeginRound("P4.Steps7-8 (masked shares -> H)");
    PSI_RETURN_NOT_OK(network_->SendFramed(providers_[0], host_,
                                           ProtocolId::kLinkInfluence,
                                           kStepMaskedShares,
                                           wire::PackBigUInts(masked1)));
    PSI_RETURN_NOT_OK(network_->SendFramed(providers_[1], host_,
                                           ProtocolId::kLinkInfluence,
                                           kStepMaskedShares,
                                           wire::PackBigInts(masked2)));
    PSI_ASSIGN_OR_RETURN(
        auto buf1, network_->RecvValidated(host_, providers_[0],
                                           ProtocolId::kLinkInfluence,
                                           kStepMaskedShares));
    PSI_ASSIGN_OR_RETURN(
        auto buf2, network_->RecvValidated(host_, providers_[1],
                                           ProtocolId::kLinkInfluence,
                                           kStepMaskedShares));
    {
      std::vector<BigUInt> host_m1;
      std::vector<BigInt> host_m2;
      PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf1, &host_m1));
      PSI_RETURN_NOT_OK(wire::UnpackBigInts(buf2, &host_m2));
      if (host_m1.size() != total || host_m2.size() != total) {
        return Status::ProtocolError("masked share vectors have wrong length");
      }
    }
    session.PartyState(host_).Put(kKeyMasked1, std::move(buf1));
    session.PartyState(host_).Put(kKeyMasked2, std::move(buf2));
    return Status::OK();
  });

  // ---- Step 9 (local at H): recombine and divide. ----
  LinkInfluence out;
  session.AddStage("recombine", [&, this]() -> Status {
    std::vector<Arc> omega;
    {
      PSI_ASSIGN_OR_RETURN(auto buf, session.PartyState(host_).Get(kKeyOmega));
      PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &omega));
    }
    const size_t q = omega.size();
    const size_t total = n + q;
    std::vector<BigUInt> host_m1;
    std::vector<BigInt> host_m2;
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(host_).Get(kKeyMasked1));
      PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &host_m1));
    }
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(host_).Get(kKeyMasked2));
      PSI_RETURN_NOT_OK(wire::UnpackBigInts(buf, &host_m2));
    }
    if (host_m1.size() != total || host_m2.size() != total) {
      return Status::ProtocolError("masked share vectors have wrong length");
    }

    // Recombined masked counters: R_i * a_i and R_i * numerator_ij, exact.
    std::vector<BigUInt> masked_a(n), masked_b(q);
    PSI_RETURN_NOT_OK(ParallelForStatus(total, [&](size_t c) -> Status {
      BigInt value = BigInt(host_m1[c]) + host_m2[c];
      if (value.IsNegative()) {
        return Status::ProtocolError("negative recombined masked counter");
      }
      if (c < n) {
        masked_a[c] = value.magnitude();
      } else {
        masked_b[c - n] = value.magnitude();
      }
      return Status::OK();
    }));
    views_.host_masked_a.resize(n);
    for (size_t i = 0; i < n; ++i) {
      // What H "sees" as a real number: r_i * a_i (descaled fixed point).
      views_.host_masked_a[i] = std::ldexp(
          masked_a[i].ToDouble(), -static_cast<int>(config_.fraction_bits));
    }
    views_.host_masked_b.resize(q);
    for (size_t p = 0; p < q; ++p) {
      views_.host_masked_b[p] = std::ldexp(
          masked_b[p].ToDouble(), -static_cast<int>(config_.fraction_bits));
    }

    // H evaluates quotients only for the genuine arcs of E.
    std::unordered_map<uint64_t, size_t> omega_index;
    omega_index.reserve(q);
    for (size_t p = 0; p < q; ++p) {
      omega_index.emplace(PairKey(omega[p].from, omega[p].to), p);
    }

    out.pairs = host_graph.arcs();
    out.p.resize(out.pairs.size());
    const double descale = config_.weights.has_value()
                               ? static_cast<double>(config_.weight_scale)
                               : 1.0;
    for (size_t e = 0; e < out.pairs.size(); ++e) {
      const Arc& arc = out.pairs[e];
      auto it = omega_index.find(PairKey(arc.from, arc.to));
      if (it == omega_index.end()) {
        return Status::ProtocolError("arc of E missing from Omega_E'");
      }
      const BigUInt& denom = masked_a[arc.from];
      if (denom.IsZero()) {
        out.p[e] = 0.0;
      } else {
        out.p[e] = DivideToDouble(masked_b[it->second], denom) / descale;
      }
    }
    return Status::OK();
  });

  SessionOrchestrator local_orchestrator(retry);
  SessionOrchestrator* driver =
      orchestrator != nullptr ? orchestrator : &local_orchestrator;
  Status run = driver->Run(&session);
  if (stats_out != nullptr) *stats_out = driver->stats();
  PSI_RETURN_NOT_OK(run);
  return out;
}

}  // namespace psi
