#include "mpc/remote_exec.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/envelope.h"
#include "net/socket_util.h"

namespace psi {

namespace {

std::string SlotKey(const std::string& session, uint32_t party) {
  return session + "#" + std::to_string(party);
}

std::vector<uint8_t> SealResponse(uint32_t party, uint32_t stage_index,
                                  const wire::ExecResponse& resp) {
  return SealEnvelope(ProtocolId::kExec, wire::kExecStepResult, party,
                      stage_index, wire::PackExecResponse(resp));
}

}  // namespace

// -- StageExecutor ----------------------------------------------------------

PsidExecHandler StageExecutor::Handler() {
  return [this](const std::vector<uint8_t>& request) {
    return Handle(request);
  };
}

std::vector<uint8_t> StageExecutor::Handle(
    const std::vector<uint8_t>& request_frame) {
  ++stats_.requests;
  auto opened = OpenEnvelope(request_frame);
  wire::ExecRequest req;
  Status decoded = opened.status();
  if (decoded.ok()) {
    const Envelope& env = opened.ValueOrDie();
    if (env.protocol_id != ProtocolId::kExec ||
        env.step != wire::kExecStepRequest) {
      decoded = Status::SerializationError(
          "exec handler: frame is not a kExec request");
    } else {
      decoded = wire::UnpackExecRequest(env.payload, &req);
    }
  }
  if (!decoded.ok()) {
    // A malformed request still gets a well-formed answer: the host sees a
    // clean kError instead of a timeout. Seal under seq 0 — without a
    // decodable stage index there is nothing better, and the host drops
    // mismatched seqs as stale, which is the correct fate for this reply
    // to a frame the host cannot have sent.
    ++stats_.malformed;
    wire::ExecResponse resp;
    resp.outcome = wire::ExecOutcome::kError;
    resp.message = "malformed exec request: " + decoded.message();
    return SealResponse(0, 0, resp);
  }
  wire::ExecResponse resp = Dispatch(req);
  return SealResponse(req.party, req.stage_index, resp);
}

wire::ExecResponse StageExecutor::Dispatch(const wire::ExecRequest& req) {
  wire::ExecResponse resp;
  Slot& slot = slots_[SlotKey(req.session, req.party)];
  if (req.includes_state) {
    auto state = SessionState::Deserialize(req.state_blob);
    if (!state.ok()) {
      resp.outcome = wire::ExecOutcome::kError;
      resp.message =
          "shipped state rejected: " + state.status().message();
      return resp;
    }
    slot.state = std::move(state).ValueOrDie();
    slot.stages_completed = req.stage_index;
    slot.has_cached = false;
    ++stats_.states_loaded;
  } else if (slot.has_cached && slot.cached_stage == req.stage_index &&
             slot.stages_completed == req.stage_index + 1) {
    // The host is retrying a call whose answer it never saw (timeout,
    // SIGSTOP, dropped link). The program already ran from exactly this
    // request's pre-state: re-serve its checkpoint, recompute nothing.
    ++stats_.cache_hits;
    wire::ExecResponse cached = slot.cached;
    cached.from_cache = true;
    return cached;
  } else if (slot.stages_completed != req.stage_index) {
    // Fresh daemon, or the host rewound past us: ask for the checkpoint.
    ++stats_.need_state;
    resp.outcome = wire::ExecOutcome::kNeedState;
    resp.message = "daemon holds " + std::to_string(slot.stages_completed) +
                   " completed stage(s), request is for stage " +
                   std::to_string(req.stage_index);
    return resp;
  }
  if (!StageProgramRegistry::Global().Contains(req.program)) {
    ++stats_.unsupported;
    resp.outcome = wire::ExecOutcome::kUnsupported;
    resp.message = "stage program '" + req.program + "' is not registered";
    return resp;
  }
  // Host randomness is authoritative: rebuild the program's RNG streams
  // from the request's snapshots, so a replayed request re-derives bitwise
  // the same draws no matter what ran here before.
  std::vector<Rng> rngs;
  rngs.reserve(req.rng_blobs.size());
  StageProgramContext ctx;
  ctx.state = &slot.state;
  for (const auto& [label, blob] : req.rng_blobs) {
    Rng rng(0);
    Status loaded = rng.LoadState(blob);
    if (!loaded.ok()) {
      resp.outcome = wire::ExecOutcome::kError;
      resp.message = "RNG snapshot '" + label +
                     "' rejected: " + loaded.message();
      return resp;
    }
    rngs.push_back(std::move(rng));
  }
  for (Rng& rng : rngs) ctx.rngs.push_back(&rng);
  ++stats_.executed;
  Status ran = StageProgramRegistry::Global().Run(req.program, &ctx);
  if (!ran.ok()) {
    ++stats_.program_errors;
    resp.outcome = wire::ExecOutcome::kError;
    resp.message = "program '" + req.program + "' failed: " + ran.message();
    return resp;
  }
  stats_.crypto_ops += ctx.crypto_ops;
  resp.outcome = wire::ExecOutcome::kOk;
  resp.crypto_ops = ctx.crypto_ops;
  resp.state_blob = slot.state.Serialize();
  resp.rng_blobs.reserve(req.rng_blobs.size());
  for (size_t i = 0; i < req.rng_blobs.size(); ++i) {
    resp.rng_blobs.emplace_back(req.rng_blobs[i].first, rngs[i].SaveState());
  }
  slot.stages_completed = req.stage_index + 1;
  slot.has_cached = true;
  slot.cached_stage = req.stage_index;
  slot.cached = resp;
  return resp;
}

// -- RemoteSessionOrchestrator ----------------------------------------------

Result<wire::ExecResponse> RemoteSessionOrchestrator::CallOnce(
    ProtocolSession* session, RemoteExecTransport* net,
    const RemoteStageSpec& spec, size_t index, uint32_t attempt,
    bool include_state, uint64_t deadline_ms, bool* no_engine) {
  *no_engine = false;
  wire::ExecRequest req;
  req.session = session->name();
  req.program = spec.program;
  req.stage_index = static_cast<uint32_t>(index);
  req.attempt = attempt;
  req.party = spec.party;
  req.includes_state = include_state;
  if (include_state) {
    req.state_blob = session->PartyState(spec.party).Serialize();
    ++exec_stats_.restores_shipped;
  }
  for (const std::string& label : spec.rng_labels) {
    Rng* rng = session->RngByLabel(label);
    if (rng == nullptr) {
      return Status::FailedPrecondition(
          "stage program '" + spec.program + "' wants RNG '" + label +
          "' but the session never registered it");
    }
    req.rng_blobs.emplace_back(label, rng->SaveState());
  }
  const std::vector<uint8_t> frame =
      SealEnvelope(ProtocolId::kExec, wire::kExecStepRequest, spec.party,
                   index, wire::PackExecRequest(req));
  ++exec_stats_.remote_calls;
  PSI_ASSIGN_OR_RETURN(const std::vector<uint8_t> answer,
                       net->RemoteCall(spec.party, frame, deadline_ms, index));
  if (answer.empty()) {
    *no_engine = true;
    return wire::ExecResponse{};
  }
  PSI_ASSIGN_OR_RETURN(const Envelope env, OpenEnvelope(answer));
  if (env.protocol_id != ProtocolId::kExec ||
      env.step != wire::kExecStepResult || env.seq != index) {
    return Status::ProtocolError(
        "daemon answered stage " + std::to_string(index) +
        " with a mistagged frame (protocol " +
        ProtocolIdToString(env.protocol_id) + ", step " +
        std::to_string(env.step) + ", seq " + std::to_string(env.seq) + ")");
  }
  wire::ExecResponse resp;
  PSI_RETURN_NOT_OK(wire::UnpackExecResponse(env.payload, &resp));
  return resp;
}

Status RemoteSessionOrchestrator::ApplyResult(ProtocolSession* session,
                                              const RemoteStageSpec& spec,
                                              size_t index,
                                              const wire::ExecResponse& resp) {
  if (resp.rng_blobs.size() != spec.rng_labels.size()) {
    return Status::ProtocolError(
        "daemon result advances " + std::to_string(resp.rng_blobs.size()) +
        " RNG stream(s) but the stage spec lists " +
        std::to_string(spec.rng_labels.size()));
  }
  PSI_ASSIGN_OR_RETURN(SessionState state,
                       SessionState::Deserialize(resp.state_blob));
  for (size_t i = 0; i < resp.rng_blobs.size(); ++i) {
    const auto& [label, blob] = resp.rng_blobs[i];
    if (label != spec.rng_labels[i]) {
      return Status::ProtocolError("daemon result labels RNG stream " +
                                   std::to_string(i) + " '" + label +
                                   "', expected '" + spec.rng_labels[i] + "'");
    }
    Rng* rng = session->RngByLabel(label);
    if (rng == nullptr) {
      return Status::FailedPrecondition("RNG '" + label +
                                        "' vanished from the session");
    }
    PSI_RETURN_NOT_OK(rng->LoadState(blob));
  }
  // Commit last: a rejected blob above leaves the session untouched.
  session->PartyState(spec.party) = std::move(state);
  session->MeterCryptoOps(resp.crypto_ops);
  if (resp.from_cache) ++exec_stats_.cache_hits;
  exec_stats_.remote_crypto_ops += resp.crypto_ops;
  ++exec_stats_.remote_stages;
  daemon_next_stage_[spec.party] = static_cast<uint32_t>(index) + 1;
  return Status::OK();
}

Status RemoteSessionOrchestrator::RunStage(ProtocolSession* session,
                                           size_t index) {
  const RemoteStageSpec* spec = session->remote_spec(index);
  auto* net = dynamic_cast<RemoteExecTransport*>(session->network());
  if (spec == nullptr || net == nullptr ||
      !net->RemoteExecAvailable(spec->party)) {
    // Wire stages, host-private closures, and parties without a daemon all
    // run in-process, exactly as under the base orchestrator.
    return SessionOrchestrator::RunStage(session, index);
  }
  const uint64_t deadline_ms = spec->deadline_ms != 0
                                   ? spec->deadline_ms
                                   : exec_policy_.stage_deadline_ms;
  Status last = Status::OK();
  bool give_up_remote = false;
  for (uint32_t attempt = 1;
       attempt <= exec_policy_.max_attempts_per_stage && !give_up_remote;
       ++attempt) {
    if (attempt > 1) {
      const uint32_t shift = std::min<uint32_t>(attempt - 2, 20);
      const uint64_t base = std::min(exec_policy_.backoff_base_ms << shift,
                                     exec_policy_.backoff_max_ms);
      const uint64_t jitter =
          exec_backoff_rng_.UniformU64(base > 0 ? base : 1);
      exec_stats_.backoff_sleep_ms += base + jitter;
      SleepMs(base + jitter);
      // Whatever ended the previous attempt may have killed the link; a
      // reconnected daemon might be a fresh process, so forget what it
      // held and let kNeedState (or the proactive include below) restore.
      ++exec_stats_.reestablishes;
      Status repaired = session->network()->Reestablish();
      if (!repaired.ok()) {
        last = std::move(repaired);
        continue;
      }
      daemon_next_stage_.erase(spec->party);
    }
    auto synced = daemon_next_stage_.find(spec->party);
    bool include_state =
        synced == daemon_next_stage_.end() || synced->second != index;
    for (int ship = 0; ship < 2; ++ship) {
      bool no_engine = false;
      auto result = CallOnce(session, net, *spec, index, attempt,
                             include_state, deadline_ms, &no_engine);
      if (!result.ok()) {
        last = result.status();
        if (last.message().find("timed out") != std::string::npos) {
          ++exec_stats_.timeouts;
        } else {
          ++exec_stats_.link_failures;
        }
        daemon_next_stage_.erase(spec->party);
        break;  // Next attempt (backoff + reestablish).
      }
      if (no_engine) {
        // The daemon hosts the party's wire presence but has no execution
        // engine: burning the retry budget cannot change that.
        ++exec_stats_.unsupported;
        last = Status::FailedPrecondition(
            "daemon hosting " + session->network()->party_name(spec->party) +
            " has no execution engine");
        give_up_remote = true;
        break;
      }
      const wire::ExecResponse& resp = result.ValueOrDie();
      if (resp.outcome == wire::ExecOutcome::kOk) {
        return ApplyResult(session, *spec, index, resp);
      }
      if (resp.outcome == wire::ExecOutcome::kNeedState && !include_state) {
        // Fresh daemon (restarted under us): re-ship the party's current
        // state — exactly the last committed checkpoint — and re-ask
        // within the same attempt.
        ++exec_stats_.need_state_roundtrips;
        include_state = true;
        continue;
      }
      if (resp.outcome == wire::ExecOutcome::kUnsupported) {
        ++exec_stats_.unsupported;
        last = Status::FailedPrecondition("daemon: " + resp.message);
        give_up_remote = true;
        break;
      }
      // kError, or kNeedState straight after a state ship: the program
      // failed deterministically (or the daemon is incoherent). A local
      // run of the same pure program would fail identically, so surface
      // the error as the stage's result instead of degrading.
      return Status::ProtocolError(
          "remote stage '" + session->stage_name(index) + "' (program '" +
          spec->program + "', " +
          session->network()->party_name(spec->party) + "): " + resp.message);
    }
  }
  if (exec_policy_.allow_local_fallback) {
    ++exec_stats_.degraded_to_local;
    PSI_LOG(Warning) << "remote execution of stage '"
                     << session->stage_name(index) << "' (program '"
                     << spec->program << "', "
                     << session->network()->party_name(spec->party)
                     << ") degraded to local after "
                     << (give_up_remote ? std::string("engine refusal")
                                        : std::to_string(
                                              exec_policy_
                                                  .max_attempts_per_stage) +
                                              " attempt(s)")
                     << "; last error: " << last.message();
    return SessionOrchestrator::RunStage(session, index);
  }
  return Status::ProtocolError(
      "remote execution of stage '" + session->stage_name(index) +
      "' (program '" + spec->program + "', " +
      session->network()->party_name(spec->party) + ") failed after " +
      std::to_string(exec_policy_.max_attempts_per_stage) +
      " attempt(s) with local fallback disabled; last error: " +
      last.message());
}

}  // namespace psi
