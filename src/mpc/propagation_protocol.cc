#include "mpc/propagation_protocol.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/annotations.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "crypto/packing.h"
#include "graph/generators.h"
#include "mpc/wire.h"

namespace psi {

namespace {

// Step tags for ProtocolId::kPropagationGraph frames.
constexpr uint16_t kStepOmega = 2;       // H -> P_k: Omega_E'.
constexpr uint16_t kStepPublicKey = 3;   // H -> P_k: RSA public key.
constexpr uint16_t kStepDeltas = 4;      // P_k -> P1: E(Delta) bundles.
constexpr uint16_t kStepAggregate = 10;  // P1 -> H: concatenated bundles.

// SessionState keys of the checkpointed stage machine. The host's RSA
// private key lives only in its durable state (and the in-memory keypair);
// it never crosses the wire.
constexpr char kKeyOmega[] = "omega";
constexpr char kKeyPublicKey[] = "pubkey";
constexpr char kKeyPrivateKey[] = "rsa-key";
constexpr char kKeyPayload[] = "payload";
constexpr char kKeyDeltas[] = "deltas";
// Stage-program inputs staged into each provider's state before the run:
// the public encryption config and the provider's own action log. They
// checkpoint (and ship to the provider's daemon) with everything else.
constexpr char kKeyExecCfg[] = "exec.cfg";
constexpr char kKeyExecLog[] = "exec.log";

// Registry name of the per-provider encryption stage program.
constexpr char kProgramEncrypt[] = "p6/encrypt";

// Serializes only the public half of the key pair: the output is wire-bound
// by definition, so the packer declassifies the keygen-derived taint.
PSI_SANITIZES std::vector<uint8_t> PackPublicKey(const RsaPublicKey& key) {
  BinaryWriter w;
  WriteBigUInt(&w, key.n);
  WriteBigUInt(&w, key.e);
  return w.TakeBuffer();
}

[[nodiscard]] Status UnpackPublicKey(const std::vector<uint8_t>& buf, RsaPublicKey* out) {
  BinaryReader r(buf);
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->n));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->e));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  if (out->n.IsZero() || out->e.IsZero()) {
    return Status::ProtocolError("received a degenerate RSA public key");
  }
  return Status::OK();
}

// Checkpoint codec for the host's private key (CRT values included, so a
// restarted host decrypts at full speed). Durable-storage only.
std::vector<uint8_t> PackPrivateKey(const RsaPrivateKey& key) {
  BinaryWriter w;
  WriteBigUInt(&w, key.n);
  WriteBigUInt(&w, key.d);
  WriteBigUInt(&w, key.p);
  WriteBigUInt(&w, key.q);
  WriteBigUInt(&w, key.d_mod_p1);
  WriteBigUInt(&w, key.d_mod_q1);
  WriteBigUInt(&w, key.q_inv_p);
  return w.TakeBuffer();
}

[[nodiscard]] Status UnpackPrivateKey(const std::vector<uint8_t>& buf,
                                      RsaPrivateKey* out) {
  BinaryReader r(buf);
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->n));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->d));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->p));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->q));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->d_mod_p1));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->d_mod_q1));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->q_inv_p));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  if (out->n.IsZero() || out->d.IsZero()) {
    return Status::SerializationError("checkpointed RSA key is degenerate");
  }
  return Status::OK();
}

// Encrypted Delta vector of one action, as serialized on the wire.
constexpr uint8_t kModePerInteger = 0;
constexpr uint8_t kModeHybrid = 1;
constexpr uint8_t kModePacked = 2;

// Both endpoints derive the packed geometry from the published modulus and
// the public Delta bound: one slot per Delta, low 64 bits reserved for the
// randomizer pad (same randomization as kPerInteger, amortized over k
// slots). InvalidArgument when no whole slot fits z - 65 bits.
[[nodiscard]] Result<PackingCodec> DeltaPackingCodec(const BigUInt& rsa_modulus,
                                       uint64_t delta_bound) {
  return PackingCodec::Create(rsa_modulus.BitLength() - 1,
                              BigUInt(delta_bound),
                              /*max_additions=*/1, /*pad_bits=*/64);
}

// `crypto_ops` accumulates RSA exponentiations for the session ledger.
[[nodiscard]] Status EncryptDeltaVector(const RsaPublicKey& key,
                          Protocol6Config::EncryptionMode mode,
                          const PackingCodec* codec, uint64_t delta_bound,
                          uint32_t action, const std::vector<uint64_t>& delta,
                          Rng* rng, BinaryWriter* w, uint64_t* crypto_ops) {
  w->WriteU32(action);
  if (mode == Protocol6Config::EncryptionMode::kPackedInteger) {
    // The bound is public but this provider's Deltas are not guaranteed to
    // obey it; a violation downgrades this one vector to kPerInteger
    // (slot corruption is never an option).
    bool bounded = codec != nullptr;
    for (uint64_t d : delta) {
      if (d > delta_bound) {
        bounded = false;
        break;
      }
    }
    if (bounded) {
      w->WriteU8(kModePacked);
      w->WriteVarU64(delta.size());
      const size_t num_ct = codec->NumPlaintexts(delta.size());
      // Pads are drawn serially in wire order (determinism contract); only
      // the RSA exponentiations fan out.
      std::vector<BigUInt> counters(delta.size());
      for (size_t i = 0; i < delta.size(); ++i) counters[i] = BigUInt(delta[i]);
      std::vector<BigUInt> pads(num_ct);
      for (auto& p : pads) p = BigUInt(rng->NextU64());
      PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> plain,
                           codec->Pack(counters, pads));
      std::vector<BigUInt> cts(plain.size());
      PSI_RETURN_NOT_OK(
          ParallelForStatus(plain.size(), [&](size_t i) -> Status {
            PSI_ASSIGN_OR_RETURN(cts[i], RsaEncrypt(key, plain[i]));
            return Status::OK();
          }));
      for (const BigUInt& c : cts) WriteBigUInt(w, c);
      *crypto_ops += cts.size();
      return Status::OK();
    }
    mode = Protocol6Config::EncryptionMode::kPerInteger;
  }
  if (mode == Protocol6Config::EncryptionMode::kPerInteger) {
    w->WriteU8(kModePerInteger);
    w->WriteVarU64(delta.size());
    // Randomized encoding: (Delta << 64) | 64 random bits, so equal
    // plaintexts yield unequal ciphertexts under deterministic RSA. The
    // low-bit draws stay in link order; only the RSA exponentiations fan
    // out, and the ciphertexts are serialized back in link order.
    std::vector<BigUInt> plain(delta.size());
    for (size_t i = 0; i < delta.size(); ++i) {
      plain[i] = (BigUInt(delta[i]) << 64) + BigUInt(rng->NextU64());
    }
    std::vector<BigUInt> cts(delta.size());
    PSI_RETURN_NOT_OK(ParallelForStatus(delta.size(), [&](size_t i) -> Status {
      PSI_ASSIGN_OR_RETURN(cts[i], RsaEncrypt(key, plain[i]));
      return Status::OK();
    }));
    for (const BigUInt& c : cts) WriteBigUInt(w, c);
    *crypto_ops += cts.size();
  } else {
    w->WriteU8(kModeHybrid);
    BinaryWriter plain;
    plain.WriteVarU64(delta.size());
    for (uint64_t d : delta) plain.WriteVarU64(d);
    PSI_ASSIGN_OR_RETURN(HybridCiphertext ct,
                         HybridEncrypt(key, plain.buffer(), rng));
    WriteBigUInt(w, ct.encapsulated_key);
    w->WriteBytes(ct.nonce);
    w->WriteBytes(ct.payload);
    *crypto_ops += 1;  // one RSA-KEM exponentiation per vector
  }
  return Status::OK();
}

[[nodiscard]] Status DecryptDeltaVector(const RsaPrivateKey& key, const PackingCodec* codec,
                          BinaryReader* r, uint32_t* action,
                          std::vector<uint64_t>* delta, uint64_t* crypto_ops) {
  PSI_RETURN_NOT_OK(r->ReadU32(action));
  uint8_t mode;
  PSI_RETURN_NOT_OK(r->ReadU8(&mode));
  if (mode == kModePacked) {
    if (codec == nullptr) {
      return Status::ProtocolError("packed mode byte but packing not enabled");
    }
    uint64_t count;
    PSI_RETURN_NOT_OK(r->ReadCount(&count));
    const size_t num_ct = codec->NumPlaintexts(count);
    std::vector<BigUInt> cts(num_ct);
    for (auto& c : cts) PSI_RETURN_NOT_OK(ReadBigUInt(r, &c));
    std::vector<BigUInt> plain(num_ct);
    PSI_RETURN_NOT_OK(ParallelForStatus(num_ct, [&](size_t i) -> Status {
      PSI_ASSIGN_OR_RETURN(plain[i], RsaDecrypt(key, cts[i]));
      return Status::OK();
    }));
    *crypto_ops += num_ct;
    PSI_ASSIGN_OR_RETURN(*delta, codec->UnpackU64(plain, count));
    return Status::OK();
  }
  if (mode == kModePerInteger) {
    uint64_t count;
    PSI_RETURN_NOT_OK(r->ReadCount(&count));
    delta->resize(count);
    // Deserialize in wire order, then fan the pure RSA-CRT decryptions out.
    std::vector<BigUInt> cts(delta->size());
    for (auto& c : cts) PSI_RETURN_NOT_OK(ReadBigUInt(r, &c));
    PSI_RETURN_NOT_OK(ParallelForStatus(cts.size(), [&](size_t i) -> Status {
      PSI_ASSIGN_OR_RETURN(BigUInt m, RsaDecrypt(key, cts[i]));
      PSI_ASSIGN_OR_RETURN((*delta)[i], (m >> 64).ToUint64());
      return Status::OK();
    }));
    *crypto_ops += cts.size();
  } else if (mode == kModeHybrid) {
    HybridCiphertext ct;
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &ct.encapsulated_key));
    PSI_RETURN_NOT_OK(r->ReadBytes(&ct.nonce));
    PSI_RETURN_NOT_OK(r->ReadBytes(&ct.payload));
    PSI_ASSIGN_OR_RETURN(auto plain, HybridDecrypt(key, ct));
    *crypto_ops += 1;
    BinaryReader pr(plain);
    uint64_t count;
    PSI_RETURN_NOT_OK(pr.ReadCount(&count));
    delta->resize(count);
    for (auto& d : *delta) PSI_RETURN_NOT_OK(pr.ReadVarU64(&d));
  } else {
    return Status::ProtocolError("unknown encryption mode byte");
  }
  return Status::OK();
}

// One provider's Steps 4-8: compute the Delta vector of every owned action
// over Omega_E' and encrypt it under H's public key. A pure function of the
// provider's SessionState (omega, pubkey, exec.cfg, exec.log) and its one
// RNG stream — which is what lets it run in-process, on the provider's psid
// daemon, or replayed after a crash with bitwise-identical output.
[[nodiscard]] Status EncryptStageProgram(StageProgramContext* ctx) {
  if (ctx->state == nullptr || ctx->rngs.size() != 1) {
    return Status::FailedPrecondition(
        "p6/encrypt wants one party state and exactly one RNG stream");
  }
  SessionState& st = *ctx->state;

  PSI_ASSIGN_OR_RETURN(const std::vector<uint8_t> cfg_buf, st.Get(kKeyExecCfg));
  BinaryReader cr(cfg_buf);
  uint8_t mode_byte = 0;
  uint64_t delta_bound = 0;
  PSI_RETURN_NOT_OK(cr.ReadU8(&mode_byte));
  PSI_RETURN_NOT_OK(cr.ReadU64(&delta_bound));
  if (!cr.AtEnd() || mode_byte > 2) {
    return Status::SerializationError("p6/encrypt: malformed exec.cfg");
  }
  const auto mode = static_cast<Protocol6Config::EncryptionMode>(mode_byte);

  std::vector<Arc> provider_omega;
  {
    PSI_ASSIGN_OR_RETURN(const auto buf, st.Get(kKeyOmega));
    PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega));
  }
  RsaPublicKey pub;
  {
    PSI_ASSIGN_OR_RETURN(const auto buf, st.Get(kKeyPublicKey));
    PSI_RETURN_NOT_OK(UnpackPublicKey(buf, &pub));
  }
  // Packed geometry, derived from the published modulus and the public
  // Delta bound. When no whole slot fits the key the provider downgrades
  // to per-integer ciphertexts (codec stays null).
  std::optional<PackingCodec> codec;
  if (mode == Protocol6Config::EncryptionMode::kPackedInteger) {
    auto codec_or = DeltaPackingCodec(pub.n, delta_bound);
    if (codec_or.ok()) codec = *codec_or;
  }
  const PackingCodec* codec_ptr = codec.has_value() ? &*codec : nullptr;

  ActionLog log;
  {
    PSI_ASSIGN_OR_RETURN(const auto buf, st.Get(kKeyExecLog));
    std::vector<ActionRecord> records;
    PSI_RETURN_NOT_OK(wire::UnpackRecords(buf, &records));
    for (const ActionRecord& rec : records) log.Add(rec);
  }

  BinaryWriter w;
  uint64_t ops = 0;
  // Actions controlled by this provider: those appearing in its log
  // (exclusive case).
  std::unordered_set<ActionId> owned;
  for (const auto& rec : log.records()) owned.insert(rec.action);
  std::vector<ActionId> owned_sorted(owned.begin(), owned.end());
  std::sort(owned_sorted.begin(), owned_sorted.end());
  w.WriteVarU64(owned_sorted.size());
  for (ActionId action : owned_sorted) {
    std::vector<uint64_t> delta(provider_omega.size(), 0);
    for (size_t p = 0; p < provider_omega.size(); ++p) {
      const Arc& arc = provider_omega[p];
      uint64_t ti, tj;
      if (log.Lookup(arc.from, action, &ti) &&
          log.Lookup(arc.to, action, &tj) && tj > ti) {
        delta[p] = tj - ti;
      }
    }
    PSI_RETURN_NOT_OK(EncryptDeltaVector(pub, mode, codec_ptr, delta_bound,
                                         action, delta, ctx->rngs[0], &w,
                                         &ops));
  }
  st.Put(kKeyPayload, w.TakeBuffer());
  ctx->crypto_ops += ops;
  return Status::OK();
}

}  // namespace

void RegisterPropagationStagePrograms() {
  static std::once_flag once;
  std::call_once(once, [] {
    StageProgramRegistry::Global().Register(kProgramEncrypt,
                                            EncryptStageProgram);
  });
}

PropagationGraphProtocol::PropagationGraphProtocol(
    Network* network, PartyId host, std::vector<PartyId> providers,
    Protocol6Config config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(config) {}

Result<Protocol6Output> PropagationGraphProtocol::Run(
    const SocialGraph& host_graph, size_t num_actions,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs) {
  RetryPolicy single_attempt;
  single_attempt.max_attempts = 1;
  return RunSession(host_graph, num_actions, provider_logs, host_rng,
                    provider_rngs, single_attempt, /*stats_out=*/nullptr);
}

Result<Protocol6Output> PropagationGraphProtocol::RunSession(
    const SocialGraph& host_graph, size_t num_actions,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, const RetryPolicy& retry,
    SessionStats* stats_out, SessionOrchestrator* orchestrator) {
  RegisterPropagationStagePrograms();
  const size_t m = providers_.size();
  const size_t n = host_graph.num_nodes();
  if (m < 2) return Status::InvalidArgument("Protocol 6 needs >= 2 providers");
  if (provider_logs.size() != m || provider_rngs.size() != m) {
    return Status::InvalidArgument("one log and rng per provider");
  }

  std::vector<PartyId> parties;
  parties.reserve(m + 1);
  parties.push_back(host_);
  parties.insert(parties.end(), providers_.begin(), providers_.end());
  ProtocolSession session("p6", network_, std::move(parties));
  session.RegisterRng("host", host_rng);
  for (size_t k = 0; k < m; ++k) {
    session.RegisterRng("provider" + std::to_string(k), provider_rngs[k]);
  }

  // Stage the per-provider program inputs: the public encryption config and
  // each provider's own log, durable in that provider's state from stage 0
  // (so the initial checkpoint and any daemon-shipped restore carry them).
  BinaryWriter cfg;
  cfg.WriteU8(static_cast<uint8_t>(config_.encryption));
  cfg.WriteU64(config_.packed_delta_bound);
  const std::vector<uint8_t> cfg_buf = cfg.TakeBuffer();
  for (size_t k = 0; k < m; ++k) {
    SessionState& st = session.PartyState(providers_[k]);
    st.Put(kKeyExecCfg, cfg_buf);
    st.Put(kKeyExecLog, wire::PackRecords(provider_logs[k].records()));
  }

  // ---- Steps 1-2: H publishes Omega_E'. ----
  session.AddStage("omega", [&, this]() -> Status {
    PSI_ASSIGN_OR_RETURN(
        std::vector<Arc> omega,
        ObfuscateArcSet(host_rng, host_graph, config_.obfuscation_factor));
    views_.omega = omega;

    network_->BeginRound("P6.Step2 (H -> P_k: Omega_E')");
    auto packed_omega = wire::PackArcs(omega);
    for (size_t k = 0; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->SendFramed(host_, providers_[k],
                                             ProtocolId::kPropagationGraph,
                                             kStepOmega, packed_omega));
    }
    session.PartyState(host_).Put(kKeyOmega, packed_omega);
    for (size_t k = 0; k < m; ++k) {
      PSI_ASSIGN_OR_RETURN(
          auto buf, network_->RecvValidated(providers_[k], host_,
                                            ProtocolId::kPropagationGraph,
                                            kStepOmega));
      std::vector<Arc> provider_omega;
      PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega));
      for (const Arc& a : provider_omega) {
        if (a.from >= n || a.to >= n) {
          return Status::ProtocolError("Omega_E' arc endpoint out of range");
        }
      }
      session.PartyState(providers_[k]).Put(kKeyOmega, std::move(buf));
    }
    return Status::OK();
  });

  // ---- Step 3: H generates a key pair and publishes its public half. ----
  session.AddStage("keygen", [&, this]() -> Status {
    PSI_ASSIGN_OR_RETURN(RsaKeyPair keys,
                         RsaGenerateKeyPair(host_rng, config_.rsa_bits));
    session.MeterCryptoOps(1);  // key generation
    session.PartyState(host_).Put(kKeyPrivateKey,
                                  PackPrivateKey(keys.private_key));
    network_->BeginRound("P6.Step3 (H -> P_k: public key)");
    auto packed_key = PackPublicKey(keys.public_key);
    for (size_t k = 0; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->SendFramed(host_, providers_[k],
                                             ProtocolId::kPropagationGraph,
                                             kStepPublicKey, packed_key));
    }
    for (size_t k = 0; k < m; ++k) {
      PSI_ASSIGN_OR_RETURN(
          auto buf, network_->RecvValidated(providers_[k], host_,
                                            ProtocolId::kPropagationGraph,
                                            kStepPublicKey));
      RsaPublicKey pub;
      PSI_RETURN_NOT_OK(UnpackPublicKey(buf, &pub));
      session.PartyState(providers_[k]).Put(kKeyPublicKey, std::move(buf));
    }
    return Status::OK();
  });

  // ---- Steps 4-8 (local): providers encrypt their Delta vectors. One
  // stage per provider, each a registered stage program placed on that
  // provider: the base orchestrator (and the simulator) runs it in-process,
  // a RemoteSessionOrchestrator ships it to the provider's own psid daemon.
  // Same RNG streams drawn in the same order, so the split is transcript-
  // invariant versus the old single "encrypt" stage.
  for (size_t k = 0; k < m; ++k) {
    RemoteStageSpec spec;
    spec.party = providers_[k];
    spec.program = kProgramEncrypt;
    spec.rng_labels = {"provider" + std::to_string(k)};
    session.AddRemoteStage("encrypt-P" + std::to_string(k), std::move(spec));
  }

  // ---- Steps 4-10 (wire): bundles route via P1, who sees only bytes. ----
  session.AddStage("relay", [&, this]() -> Status {
    network_->BeginRound("P6.Steps4-9 (P_k -> P_1: E(Delta))");
    for (size_t k = 1; k < m; ++k) {
      PSI_ASSIGN_OR_RETURN(auto payload,
                           session.PartyState(providers_[k]).Get(kKeyPayload));
      PSI_RETURN_NOT_OK(network_->SendFramed(providers_[k], providers_[0],
                                             ProtocolId::kPropagationGraph,
                                             kStepDeltas, payload));
    }
    // P1 collects and forwards. Reset the relay counters so a replayed
    // stage observes the same totals as the fault-free run.
    views_.p1_relayed_bytes = 0;
    PSI_ASSIGN_OR_RETURN(std::vector<uint8_t> aggregate,
                         session.PartyState(providers_[0]).Get(kKeyPayload));
    for (size_t k = 1; k < m; ++k) {
      PSI_ASSIGN_OR_RETURN(
          auto buf, network_->RecvValidated(providers_[0], providers_[k],
                                            ProtocolId::kPropagationGraph,
                                            kStepDeltas));
      views_.p1_relayed_bytes += buf.size();
      aggregate.insert(aggregate.end(), buf.begin(), buf.end());
    }
    network_->BeginRound("P6.Step10 (P_1 -> H: all E(Delta))");
    PSI_RETURN_NOT_OK(network_->SendFramed(providers_[0], host_,
                                           ProtocolId::kPropagationGraph,
                                           kStepAggregate, aggregate));
    PSI_ASSIGN_OR_RETURN(
        auto all, network_->RecvValidated(host_, providers_[0],
                                          ProtocolId::kPropagationGraph,
                                          kStepAggregate));
    session.PartyState(host_).Put(kKeyDeltas, std::move(all));
    return Status::OK();
  });

  // ---- Steps 11-12 (local at H): decrypt and assemble the PG(alpha). ----
  Protocol6Output out;
  session.AddStage("decode", [&, this]() -> Status {
    RsaPrivateKey priv;
    {
      PSI_ASSIGN_OR_RETURN(auto buf,
                           session.PartyState(host_).Get(kKeyPrivateKey));
      PSI_RETURN_NOT_OK(UnpackPrivateKey(buf, &priv));
    }
    std::vector<Arc> omega;
    {
      PSI_ASSIGN_OR_RETURN(auto buf, session.PartyState(host_).Get(kKeyOmega));
      PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &omega));
    }
    const size_t q = omega.size();
    std::optional<PackingCodec> codec;
    if (config_.encryption ==
        Protocol6Config::EncryptionMode::kPackedInteger) {
      auto codec_or = DeltaPackingCodec(priv.n, config_.packed_delta_bound);
      if (codec_or.ok()) codec = *codec_or;
    }
    const PackingCodec* codec_ptr = codec.has_value() ? &*codec : nullptr;

    PSI_ASSIGN_OR_RETURN(auto all, session.PartyState(host_).Get(kKeyDeltas));
    BinaryReader reader(all);
    out.graphs.assign(num_actions, PropagationGraph(host_graph.num_nodes()));
    views_.p1_relayed_ciphertexts = 0;
    uint64_t ops = 0;
    size_t providers_read = 0;
    while (providers_read < m) {
      uint64_t action_count;
      // Each action entry is at least 5 bytes (action id + mode byte).
      PSI_RETURN_NOT_OK(reader.ReadCount(&action_count,
                                         /*min_bytes_per_element=*/5));
      for (uint64_t i = 0; i < action_count; ++i) {
        uint32_t action;
        std::vector<uint64_t> delta;
        PSI_RETURN_NOT_OK(DecryptDeltaVector(priv, codec_ptr, &reader,
                                             &action, &delta, &ops));
        ++views_.p1_relayed_ciphertexts;
        if (action >= num_actions) {
          return Status::ProtocolError("action id out of declared range");
        }
        if (delta.size() != q) {
          return Status::ProtocolError("Delta vector length mismatch");
        }
        for (size_t p = 0; p < q; ++p) {
          // Only genuine arcs of E become PG arcs; decoys are discarded.
          if (delta[p] > 0 && host_graph.HasArc(omega[p].from, omega[p].to)) {
            PSI_RETURN_NOT_OK(out.graphs[action].AddArc(
                omega[p].from, omega[p].to, delta[p]));
          }
        }
      }
      ++providers_read;
    }
    session.MeterCryptoOps(ops);
    if (!reader.AtEnd()) {
      return Status::ProtocolError("trailing bytes in aggregated payload");
    }
    return Status::OK();
  });

  SessionOrchestrator local_orchestrator(retry);
  SessionOrchestrator* driver =
      orchestrator != nullptr ? orchestrator : &local_orchestrator;
  Status run = driver->Run(&session);
  if (stats_out != nullptr) *stats_out = driver->stats();
  PSI_RETURN_NOT_OK(run);
  return out;
}

}  // namespace psi
