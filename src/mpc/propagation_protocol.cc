#include "mpc/propagation_protocol.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/serialize.h"
#include "common/thread_pool.h"
#include "crypto/packing.h"
#include "graph/generators.h"
#include "mpc/wire.h"

namespace psi {

namespace {

// Step tags for ProtocolId::kPropagationGraph frames.
constexpr uint16_t kStepOmega = 2;       // H -> P_k: Omega_E'.
constexpr uint16_t kStepPublicKey = 3;   // H -> P_k: RSA public key.
constexpr uint16_t kStepDeltas = 4;      // P_k -> P1: E(Delta) bundles.
constexpr uint16_t kStepAggregate = 10;  // P1 -> H: concatenated bundles.

std::vector<uint8_t> PackPublicKey(const RsaPublicKey& key) {
  BinaryWriter w;
  WriteBigUInt(&w, key.n);
  WriteBigUInt(&w, key.e);
  return w.TakeBuffer();
}

[[nodiscard]] Status UnpackPublicKey(const std::vector<uint8_t>& buf, RsaPublicKey* out) {
  BinaryReader r(buf);
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->n));
  PSI_RETURN_NOT_OK(ReadBigUInt(&r, &out->e));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  if (out->n.IsZero() || out->e.IsZero()) {
    return Status::ProtocolError("received a degenerate RSA public key");
  }
  return Status::OK();
}

// Encrypted Delta vector of one action, as serialized on the wire.
constexpr uint8_t kModePerInteger = 0;
constexpr uint8_t kModeHybrid = 1;
constexpr uint8_t kModePacked = 2;

// Both endpoints derive the packed geometry from the published modulus and
// the public Delta bound: one slot per Delta, low 64 bits reserved for the
// randomizer pad (same randomization as kPerInteger, amortized over k
// slots). InvalidArgument when no whole slot fits z - 65 bits.
[[nodiscard]] Result<PackingCodec> DeltaPackingCodec(const BigUInt& rsa_modulus,
                                       uint64_t delta_bound) {
  return PackingCodec::Create(rsa_modulus.BitLength() - 1,
                              BigUInt(delta_bound),
                              /*max_additions=*/1, /*pad_bits=*/64);
}

[[nodiscard]] Status EncryptDeltaVector(const RsaPublicKey& key,
                          Protocol6Config::EncryptionMode mode,
                          const PackingCodec* codec, uint64_t delta_bound,
                          uint32_t action, const std::vector<uint64_t>& delta,
                          Rng* rng, BinaryWriter* w) {
  w->WriteU32(action);
  if (mode == Protocol6Config::EncryptionMode::kPackedInteger) {
    // The bound is public but this provider's Deltas are not guaranteed to
    // obey it; a violation downgrades this one vector to kPerInteger
    // (slot corruption is never an option).
    bool bounded = codec != nullptr;
    for (uint64_t d : delta) {
      if (d > delta_bound) {
        bounded = false;
        break;
      }
    }
    if (bounded) {
      w->WriteU8(kModePacked);
      w->WriteVarU64(delta.size());
      const size_t num_ct = codec->NumPlaintexts(delta.size());
      // Pads are drawn serially in wire order (determinism contract); only
      // the RSA exponentiations fan out.
      std::vector<BigUInt> counters(delta.size());
      for (size_t i = 0; i < delta.size(); ++i) counters[i] = BigUInt(delta[i]);
      std::vector<BigUInt> pads(num_ct);
      for (auto& p : pads) p = BigUInt(rng->NextU64());
      PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> plain,
                           codec->Pack(counters, pads));
      std::vector<BigUInt> cts(plain.size());
      PSI_RETURN_NOT_OK(
          ParallelForStatus(plain.size(), [&](size_t i) -> Status {
            PSI_ASSIGN_OR_RETURN(cts[i], RsaEncrypt(key, plain[i]));
            return Status::OK();
          }));
      for (const BigUInt& c : cts) WriteBigUInt(w, c);
      return Status::OK();
    }
    mode = Protocol6Config::EncryptionMode::kPerInteger;
  }
  if (mode == Protocol6Config::EncryptionMode::kPerInteger) {
    w->WriteU8(kModePerInteger);
    w->WriteVarU64(delta.size());
    // Randomized encoding: (Delta << 64) | 64 random bits, so equal
    // plaintexts yield unequal ciphertexts under deterministic RSA. The
    // low-bit draws stay in link order; only the RSA exponentiations fan
    // out, and the ciphertexts are serialized back in link order.
    std::vector<BigUInt> plain(delta.size());
    for (size_t i = 0; i < delta.size(); ++i) {
      plain[i] = (BigUInt(delta[i]) << 64) + BigUInt(rng->NextU64());
    }
    std::vector<BigUInt> cts(delta.size());
    PSI_RETURN_NOT_OK(ParallelForStatus(delta.size(), [&](size_t i) -> Status {
      PSI_ASSIGN_OR_RETURN(cts[i], RsaEncrypt(key, plain[i]));
      return Status::OK();
    }));
    for (const BigUInt& c : cts) WriteBigUInt(w, c);
  } else {
    w->WriteU8(kModeHybrid);
    BinaryWriter plain;
    plain.WriteVarU64(delta.size());
    for (uint64_t d : delta) plain.WriteVarU64(d);
    PSI_ASSIGN_OR_RETURN(HybridCiphertext ct,
                         HybridEncrypt(key, plain.buffer(), rng));
    WriteBigUInt(w, ct.encapsulated_key);
    w->WriteBytes(ct.nonce);
    w->WriteBytes(ct.payload);
  }
  return Status::OK();
}

[[nodiscard]] Status DecryptDeltaVector(const RsaPrivateKey& key, const PackingCodec* codec,
                          BinaryReader* r, uint32_t* action,
                          std::vector<uint64_t>* delta) {
  PSI_RETURN_NOT_OK(r->ReadU32(action));
  uint8_t mode;
  PSI_RETURN_NOT_OK(r->ReadU8(&mode));
  if (mode == kModePacked) {
    if (codec == nullptr) {
      return Status::ProtocolError("packed mode byte but packing not enabled");
    }
    uint64_t count;
    PSI_RETURN_NOT_OK(r->ReadCount(&count));
    const size_t num_ct = codec->NumPlaintexts(count);
    std::vector<BigUInt> cts(num_ct);
    for (auto& c : cts) PSI_RETURN_NOT_OK(ReadBigUInt(r, &c));
    std::vector<BigUInt> plain(num_ct);
    PSI_RETURN_NOT_OK(ParallelForStatus(num_ct, [&](size_t i) -> Status {
      PSI_ASSIGN_OR_RETURN(plain[i], RsaDecrypt(key, cts[i]));
      return Status::OK();
    }));
    PSI_ASSIGN_OR_RETURN(*delta, codec->UnpackU64(plain, count));
    return Status::OK();
  }
  if (mode == kModePerInteger) {
    uint64_t count;
    PSI_RETURN_NOT_OK(r->ReadCount(&count));
    delta->resize(count);
    // Deserialize in wire order, then fan the pure RSA-CRT decryptions out.
    std::vector<BigUInt> cts(delta->size());
    for (auto& c : cts) PSI_RETURN_NOT_OK(ReadBigUInt(r, &c));
    PSI_RETURN_NOT_OK(ParallelForStatus(cts.size(), [&](size_t i) -> Status {
      PSI_ASSIGN_OR_RETURN(BigUInt m, RsaDecrypt(key, cts[i]));
      PSI_ASSIGN_OR_RETURN((*delta)[i], (m >> 64).ToUint64());
      return Status::OK();
    }));
  } else if (mode == kModeHybrid) {
    HybridCiphertext ct;
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &ct.encapsulated_key));
    PSI_RETURN_NOT_OK(r->ReadBytes(&ct.nonce));
    PSI_RETURN_NOT_OK(r->ReadBytes(&ct.payload));
    PSI_ASSIGN_OR_RETURN(auto plain, HybridDecrypt(key, ct));
    BinaryReader pr(plain);
    uint64_t count;
    PSI_RETURN_NOT_OK(pr.ReadCount(&count));
    delta->resize(count);
    for (auto& d : *delta) PSI_RETURN_NOT_OK(pr.ReadVarU64(&d));
  } else {
    return Status::ProtocolError("unknown encryption mode byte");
  }
  return Status::OK();
}

}  // namespace

PropagationGraphProtocol::PropagationGraphProtocol(
    Network* network, PartyId host, std::vector<PartyId> providers,
    Protocol6Config config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(config) {}

Result<Protocol6Output> PropagationGraphProtocol::Run(
    const SocialGraph& host_graph, size_t num_actions,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs) {
  const size_t m = providers_.size();
  if (m < 2) return Status::InvalidArgument("Protocol 6 needs >= 2 providers");
  if (provider_logs.size() != m || provider_rngs.size() != m) {
    return Status::InvalidArgument("one log and rng per provider");
  }

  // ---- Steps 1-2: H publishes Omega_E'. ----
  PSI_ASSIGN_OR_RETURN(
      std::vector<Arc> omega,
      ObfuscateArcSet(host_rng, host_graph, config_.obfuscation_factor));
  views_.omega = omega;
  const size_t q = omega.size();

  network_->BeginRound("P6.Step2 (H -> P_k: Omega_E')");
  auto packed_omega = wire::PackArcs(omega);
  for (size_t k = 0; k < m; ++k) {
    PSI_RETURN_NOT_OK(network_->SendFramed(host_, providers_[k],
                                           ProtocolId::kPropagationGraph,
                                           kStepOmega, packed_omega));
  }
  const size_t n = host_graph.num_nodes();
  std::vector<std::vector<Arc>> provider_omega(m);
  for (size_t k = 0; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(providers_[k], host_,
                                          ProtocolId::kPropagationGraph,
                                          kStepOmega));
    PSI_RETURN_NOT_OK(wire::UnpackArcs(buf, &provider_omega[k]));
    for (const Arc& a : provider_omega[k]) {
      if (a.from >= n || a.to >= n) {
        return Status::ProtocolError("Omega_E' arc endpoint out of range");
      }
    }
  }

  // ---- Step 3: H publishes its public key. ----
  PSI_ASSIGN_OR_RETURN(RsaKeyPair keys,
                       RsaGenerateKeyPair(host_rng, config_.rsa_bits));
  network_->BeginRound("P6.Step3 (H -> P_k: public key)");
  auto packed_key = PackPublicKey(keys.public_key);
  for (size_t k = 0; k < m; ++k) {
    PSI_RETURN_NOT_OK(network_->SendFramed(host_, providers_[k],
                                           ProtocolId::kPropagationGraph,
                                           kStepPublicKey, packed_key));
  }
  std::vector<RsaPublicKey> provider_keys(m);
  for (size_t k = 0; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(providers_[k], host_,
                                          ProtocolId::kPropagationGraph,
                                          kStepPublicKey));
    PSI_RETURN_NOT_OK(UnpackPublicKey(buf, &provider_keys[k]));
  }

  // Packed geometry, derived by every party from the published modulus and
  // the public Delta bound. When no whole slot fits the key the whole run
  // downgrades to per-integer ciphertexts (codec stays null).
  std::optional<PackingCodec> codec;
  if (config_.encryption == Protocol6Config::EncryptionMode::kPackedInteger) {
    auto codec_or =
        DeltaPackingCodec(keys.public_key.n, config_.packed_delta_bound);
    if (codec_or.ok()) codec = *codec_or;
  }
  const PackingCodec* codec_ptr = codec.has_value() ? &*codec : nullptr;

  // ---- Steps 4-9: providers encrypt their Delta vectors, route via P1. ----
  network_->BeginRound("P6.Steps4-9 (P_k -> P_1: E(Delta))");
  std::vector<std::vector<uint8_t>> provider_payloads(m);
  for (size_t k = 0; k < m; ++k) {
    BinaryWriter w;
    // Actions controlled by provider k: those appearing in its log
    // (exclusive case).
    std::unordered_set<ActionId> owned;
    for (const auto& rec : provider_logs[k].records()) {
      owned.insert(rec.action);
    }
    std::vector<ActionId> owned_sorted(owned.begin(), owned.end());
    std::sort(owned_sorted.begin(), owned_sorted.end());
    w.WriteVarU64(owned_sorted.size());
    for (ActionId action : owned_sorted) {
      std::vector<uint64_t> delta(provider_omega[k].size(), 0);
      for (size_t p = 0; p < provider_omega[k].size(); ++p) {
        const Arc& arc = provider_omega[k][p];
        uint64_t ti, tj;
        if (provider_logs[k].Lookup(arc.from, action, &ti) &&
            provider_logs[k].Lookup(arc.to, action, &tj) && tj > ti) {
          delta[p] = tj - ti;
        }
      }
      PSI_RETURN_NOT_OK(EncryptDeltaVector(
          provider_keys[k], config_.encryption, codec_ptr,
          config_.packed_delta_bound, action, delta, provider_rngs[k], &w));
    }
    provider_payloads[k] = w.TakeBuffer();
    if (k != 0) {
      PSI_RETURN_NOT_OK(network_->SendFramed(providers_[k], providers_[0],
                                             ProtocolId::kPropagationGraph,
                                             kStepDeltas,
                                             provider_payloads[k]));
    }
  }

  // P1 collects and forwards; it sees only ciphertext bytes.
  std::vector<uint8_t> aggregate = provider_payloads[0];
  for (size_t k = 1; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(providers_[0], providers_[k],
                                          ProtocolId::kPropagationGraph,
                                          kStepDeltas));
    views_.p1_relayed_bytes += buf.size();
    aggregate.insert(aggregate.end(), buf.begin(), buf.end());
  }
  network_->BeginRound("P6.Step10 (P_1 -> H: all E(Delta))");
  PSI_RETURN_NOT_OK(network_->SendFramed(providers_[0], host_,
                                         ProtocolId::kPropagationGraph,
                                         kStepAggregate, aggregate));

  // ---- Steps 11-12: H decrypts and assembles the PG(alpha). ----
  PSI_ASSIGN_OR_RETURN(
      auto all, network_->RecvValidated(host_, providers_[0],
                                        ProtocolId::kPropagationGraph,
                                        kStepAggregate));
  BinaryReader reader(all);

  Protocol6Output out;
  out.graphs.assign(num_actions, PropagationGraph(host_graph.num_nodes()));
  size_t providers_read = 0;
  while (providers_read < m) {
    uint64_t action_count;
    // Each action entry is at least 5 bytes (action id + mode byte).
    PSI_RETURN_NOT_OK(reader.ReadCount(&action_count,
                                       /*min_bytes_per_element=*/5));
    for (uint64_t i = 0; i < action_count; ++i) {
      uint32_t action;
      std::vector<uint64_t> delta;
      PSI_RETURN_NOT_OK(DecryptDeltaVector(keys.private_key, codec_ptr,
                                           &reader, &action, &delta));
      ++views_.p1_relayed_ciphertexts;
      if (action >= num_actions) {
        return Status::ProtocolError("action id out of declared range");
      }
      if (delta.size() != q) {
        return Status::ProtocolError("Delta vector length mismatch");
      }
      for (size_t p = 0; p < q; ++p) {
        // Only genuine arcs of E become PG arcs; decoys are discarded.
        if (delta[p] > 0 && host_graph.HasArc(omega[p].from, omega[p].to)) {
          PSI_RETURN_NOT_OK(
              out.graphs[action].AddArc(omega[p].from, omega[p].to, delta[p]));
        }
      }
    }
    ++providers_read;
  }
  if (!reader.AtEnd()) {
    return Status::ProtocolError("trailing bytes in aggregated payload");
  }
  return out;
}

}  // namespace psi
