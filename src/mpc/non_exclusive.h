// The full non-exclusive-case driver (Section 5.2): for every action class
// A_q, run Protocol 5 so one representative provider ends up with the
// class's aggregate counters and all group members drop their class records;
// then run Protocol 4 on the residual logs with the aggregates folded into
// the representatives' inputs.

#ifndef PSI_MPC_NON_EXCLUSIVE_H_
#define PSI_MPC_NON_EXCLUSIVE_H_

#include <vector>

#include "actionlog/partition.h"
#include "common/random.h"
#include "common/status.h"
#include "mpc/class_aggregation.h"
#include "mpc/link_influence_protocol.h"

namespace psi {

/// \brief Combined configuration; protocol5.h is forced to protocol4.h.
struct NonExclusiveConfig {
  Protocol4Config protocol4;
  Protocol5Config protocol5;
};

/// \brief Orchestrates Protocols 5 (per class) + 4.
class NonExclusivePipeline {
 public:
  NonExclusivePipeline(Network* network, PartyId host,
                       std::vector<PartyId> providers,
                       NonExclusiveConfig config);

  /// \brief Runs the pipeline.
  ///
  /// \param class_config the public class structure (A_q and P_q).
  /// \param class_secret_rng shared key material of the provider groups
  ///        (forked per class); hidden from each class's aggregator.
  [[nodiscard]] Result<LinkInfluence> Run(const SocialGraph& host_graph,
                            uint64_t num_actions_public,
                            const std::vector<ActionLog>& provider_logs,
                            const ActionClassConfig& class_config,
                            Rng* host_rng,
                            const std::vector<Rng*>& provider_rngs,
                            Rng* pair_secret_rng, Rng* class_secret_rng);

 private:
  // The pipeline body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<LinkInfluence> RunImpl(
      const SocialGraph& host_graph, uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs,
      const ActionClassConfig& class_config, Rng* host_rng,
      const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng,
      Rng* class_secret_rng);

  /// \brief An aggregator for class q: a player outside the group
  /// (preferring another provider, falling back to the host).
  PartyId PickAggregator(const std::vector<size_t>& group) const;

  Network* network_;
  PartyId host_;
  std::vector<PartyId> providers_;
  NonExclusiveConfig config_;
};

/// \brief Adds `src` counters into `dst` (a representative may serve several
/// classes).
void MergeAggregates(const AggregatedClassCounters& src,
                     AggregatedClassCounters* dst);

}  // namespace psi

#endif  // PSI_MPC_NON_EXCLUSIVE_H_
