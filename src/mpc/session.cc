#include "mpc/session.h"

#include <algorithm>
#include <utility>

#include "common/serialize.h"

namespace psi {

// -- SessionState -----------------------------------------------------------

void SessionState::Put(const std::string& key, std::vector<uint8_t> value) {
  entries_[key] = std::move(value);
}

bool SessionState::Has(const std::string& key) const {
  return entries_.find(key) != entries_.end();
}

Result<std::vector<uint8_t>> SessionState::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::FailedPrecondition("SessionState: no entry under key '" +
                                      key + "'");
  }
  return it->second;
}

void SessionState::Clear() { entries_.clear(); }

size_t SessionState::NumEntries() const { return entries_.size(); }

uint64_t SessionState::ByteSize() const {
  uint64_t total = 0;
  for (const auto& [key, value] : entries_) {
    total += key.size() + value.size();
  }
  return total;
}

std::vector<uint8_t> SessionState::Serialize() const {
  BinaryWriter w;
  w.Reserve(16 + ByteSize());
  w.WriteU32(kSessionStateVersion);
  w.WriteVarU64(entries_.size());
  for (const auto& [key, value] : entries_) {
    w.WriteString(key);
    w.WriteBytes(value);
  }
  return w.TakeBuffer();
}

Result<SessionState> SessionState::Deserialize(
    const std::vector<uint8_t>& buf) {
  BinaryReader r(buf);
  uint32_t version = 0;
  PSI_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kSessionStateVersion) {
    return Status::SerializationError(
        "SessionState: unsupported version " + std::to_string(version) +
        " (want " + std::to_string(kSessionStateVersion) + ")");
  }
  uint64_t count = 0;
  // An entry is at least a 1-byte key length plus a 1-byte value length.
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/2));
  SessionState state;
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    std::vector<uint8_t> value;
    PSI_RETURN_NOT_OK(r.ReadString(&key));
    PSI_RETURN_NOT_OK(r.ReadBytes(&value));
    const bool inserted =
        state.entries_.emplace(std::move(key), std::move(value)).second;
    if (!inserted) {
      return Status::SerializationError("SessionState: duplicate key");
    }
  }
  if (!r.AtEnd()) {
    return Status::SerializationError("SessionState: trailing bytes");
  }
  return state;
}

// -- StageProgramRegistry ---------------------------------------------------

StageProgramRegistry& StageProgramRegistry::Global() {
  static StageProgramRegistry* registry = new StageProgramRegistry();
  return *registry;
}

void StageProgramRegistry::Register(const std::string& name,
                                    StageProgramFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  programs_[name] = std::move(fn);
}

bool StageProgramRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return programs_.find(name) != programs_.end();
}

Status StageProgramRegistry::Run(const std::string& name,
                                 StageProgramContext* ctx) const {
  StageProgramFn fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = programs_.find(name);
    if (it == programs_.end()) {
      return Status::FailedPrecondition("stage program '" + name +
                                        "' is not registered");
    }
    fn = it->second;
  }
  return fn(ctx);
}

std::vector<std::string> StageProgramRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto& [name, fn] : programs_) names.push_back(name);
  return names;
}

// -- ProtocolSession --------------------------------------------------------

ProtocolSession::ProtocolSession(std::string name, Network* network,
                                 std::vector<PartyId> parties)
    : name_(std::move(name)),
      network_(network),
      parties_(std::move(parties)) {}

void ProtocolSession::AddStage(std::string stage_name, StageBody body) {
  stage_names_.push_back(std::move(stage_name));
  stage_bodies_.push_back(std::move(body));
}

void ProtocolSession::AddRemoteStage(std::string stage_name,
                                     RemoteStageSpec spec) {
  const size_t index = stage_names_.size();
  remote_specs_[index] = spec;
  // The installed body is the local path: the base orchestrator and the
  // simulator run the program in-process, and the remote orchestrator's
  // degrade-to-local falls back to exactly this.
  AddStage(std::move(stage_name), [this, spec = std::move(spec)]() -> Status {
    return RunStageProgramLocally(spec);
  });
}

void ProtocolSession::RegisterRng(std::string label, Rng* rng) {
  rng_labels_.push_back(std::move(label));
  rngs_.push_back(rng);
}

Rng* ProtocolSession::RngByLabel(const std::string& label) const {
  for (size_t i = 0; i < rng_labels_.size(); ++i) {
    if (rng_labels_[i] == label) return rngs_[i];
  }
  return nullptr;
}

const RemoteStageSpec* ProtocolSession::remote_spec(size_t index) const {
  auto it = remote_specs_.find(index);
  return it == remote_specs_.end() ? nullptr : &it->second;
}

Status ProtocolSession::RunStageProgramLocally(const RemoteStageSpec& spec) {
  StageProgramContext ctx;
  ctx.state = &PartyState(spec.party);
  ctx.rngs.reserve(spec.rng_labels.size());
  for (const std::string& label : spec.rng_labels) {
    Rng* rng = RngByLabel(label);
    if (rng == nullptr) {
      return Status::FailedPrecondition(
          "stage program '" + spec.program + "' wants RNG '" + label +
          "' but the session never registered it");
    }
    ctx.rngs.push_back(rng);
  }
  PSI_RETURN_NOT_OK(StageProgramRegistry::Global().Run(spec.program, &ctx));
  MeterCryptoOps(ctx.crypto_ops);
  return Status::OK();
}

SessionState& ProtocolSession::PartyState(PartyId party) {
  return states_[party];
}

void ProtocolSession::MeterCryptoOps(uint64_t ops) {
  current_stage_ops_ += ops;
}

// -- SessionOrchestrator ----------------------------------------------------

SessionOrchestrator::Checkpoint SessionOrchestrator::Capture(
    ProtocolSession& session, uint32_t stages_completed,
    std::vector<uint64_t> stage_ops) {
  Checkpoint cp;
  cp.stages_completed = stages_completed;
  cp.stage_ops = std::move(stage_ops);
  for (PartyId party : session.parties_) {
    cp.party_blobs.emplace_back(party, session.PartyState(party).Serialize());
  }
  for (Rng* rng : session.rngs_) {
    cp.rng_blobs.push_back(rng->SaveState());
  }
  return cp;
}

Status SessionOrchestrator::Restore(ProtocolSession& session,
                                    const Checkpoint& checkpoint) {
  for (const auto& [party, blob] : checkpoint.party_blobs) {
    PSI_ASSIGN_OR_RETURN(session.states_[party],
                         SessionState::Deserialize(blob));
  }
  if (checkpoint.rng_blobs.size() != session.rngs_.size()) {
    return Status::Internal(
        "session checkpoint snapshots " +
        std::to_string(checkpoint.rng_blobs.size()) + " RNG stream(s) but " +
        std::to_string(session.rngs_.size()) + " are registered");
  }
  for (size_t i = 0; i < session.rngs_.size(); ++i) {
    PSI_RETURN_NOT_OK(session.rngs_[i]->LoadState(checkpoint.rng_blobs[i]));
  }
  return Status::OK();
}

Status SessionOrchestrator::ResumeHandshake(ProtocolSession& session,
                                            uint32_t attempt,
                                            uint32_t next_stage) {
  Network* net = session.network_;
  net->BeginRound("session." + session.name_ + ".resume (attempt " +
                  std::to_string(attempt) + ")");
  // Every frame still in a mailbox belongs to the failed attempt (including
  // fault-delayed frames the BeginRound above just flushed): drop them all,
  // then jump each channel's expected sequence number past anything the
  // failed attempt ever sent. Replayed stages then start on clean channels,
  // and any straggler that surfaces later is a stale duplicate RecvValidated
  // discards for free.
  for (PartyId party : session.parties_) {
    (void)net->Drain(party);
  }
  const std::vector<PartyId>& members = session.parties_;
  for (PartyId from : members) {
    for (PartyId to : members) {
      if (from != to) net->ResyncChannel(from, to);
    }
  }
  const TrafficReport before = net->Report();
  BinaryWriter w;
  w.WriteU32(attempt);
  w.WriteU32(next_stage);
  const std::vector<uint8_t> sync = w.TakeBuffer();
  for (PartyId from : members) {
    for (PartyId to : members) {
      if (from == to) continue;
      PSI_RETURN_NOT_OK(net->SendFramed(from, to, ProtocolId::kSession,
                                        kSessionStepResumeSync, sync));
    }
  }
  for (PartyId from : members) {
    for (PartyId to : members) {
      if (from == to) continue;
      PSI_ASSIGN_OR_RETURN(
          const std::vector<uint8_t> echo,
          net->RecvValidated(to, from, ProtocolId::kSession,
                             kSessionStepResumeSync));
      BinaryReader r(echo);
      uint32_t peer_attempt = 0;
      uint32_t peer_stage = 0;
      PSI_RETURN_NOT_OK(r.ReadU32(&peer_attempt));
      PSI_RETURN_NOT_OK(r.ReadU32(&peer_stage));
      if (!r.AtEnd()) {
        return Status::SerializationError(
            "resume sync frame has trailing bytes");
      }
      if (peer_attempt != attempt || peer_stage != next_stage) {
        return Status::ProtocolError(
            "resume handshake mismatch on " + net->party_name(from) + " -> " +
            net->party_name(to) + ": peer is at attempt " +
            std::to_string(peer_attempt) + " stage " +
            std::to_string(peer_stage) + ", expected attempt " +
            std::to_string(attempt) + " stage " + std::to_string(next_stage));
      }
    }
  }
  const TrafficReport after = net->Report();
  stats_.handshake_messages += after.num_messages - before.num_messages;
  stats_.handshake_bytes += after.num_bytes - before.num_bytes;
  return Status::OK();
}

Status SessionOrchestrator::Run(ProtocolSession* session) {
  if (session == nullptr || session->network_ == nullptr) {
    return Status::InvalidArgument(
        "SessionOrchestrator: session and network must be non-null");
  }
  if (session->stage_bodies_.empty()) {
    return Status::InvalidArgument("SessionOrchestrator: session '" +
                                   session->name_ + "' has no stages");
  }
  if (session->parties_.size() < 2) {
    return Status::InvalidArgument(
        "SessionOrchestrator: a session needs at least 2 parties");
  }
  if (policy_.max_attempts == 0) {
    return Status::InvalidArgument("RetryPolicy: max_attempts must be >= 1");
  }
  stats_ = SessionStats{};
  completed_high_water_ = 0;
  last_failed_stage_.clear();
  Rng backoff_rng(policy_.seed);
  Network* net = session->network_;

  const Checkpoint initial = Capture(*session, 0, {});
  Checkpoint latest = initial;
  Status last_error = Status::OK();
  for (uint32_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    ++stats_.attempts;
    uint32_t start_stage = 0;
    std::vector<uint64_t> ledger;
    if (attempt > 1) {
      // Deterministic backoff measured in rounds: each waited round is a
      // real BeginRound, so fault windows defined in rounds (a crashed
      // party's restart_round) make progress while the session waits.
      const uint32_t shift = std::min<uint32_t>(attempt - 2, 20);
      uint64_t wait = policy_.backoff_rounds_base == 0
                          ? 0
                          : std::min(policy_.backoff_rounds_base << shift,
                                     policy_.backoff_rounds_cap);
      if (policy_.backoff_jitter_rounds > 0) {
        wait += backoff_rng.UniformU64(policy_.backoff_jitter_rounds + 1);
      }
      for (uint64_t i = 0; i < wait; ++i) {
        net->BeginRound("session." + session->name_ + ".backoff (attempt " +
                        std::to_string(attempt) + ")");
      }
      stats_.backoff_rounds += wait;

      const Checkpoint& source =
          policy_.resume_from_checkpoint ? latest : initial;
      // A checkpoint that fails to restore is terminal: retrying cannot
      // repair durable storage.
      PSI_RETURN_NOT_OK(Restore(*session, source));
      start_stage = source.stages_completed;
      ledger = source.stage_ops;
      // Repair the transport's own plumbing first: on a socket backend this
      // re-dials and re-authenticates dead daemon links (seeded backoff
      // with jitter); on the simulator it is a no-op. Only then can the
      // resume handshake's frames travel.
      Status repaired = net->Reestablish();
      if (!repaired.ok()) {
        last_error = std::move(repaired);
        continue;  // The peer may come back; this consumed an attempt.
      }
      Status handshake = ResumeHandshake(*session, attempt, start_stage);
      if (!handshake.ok()) {
        // The handshake travels the same faulty wire as everything else;
        // its failure consumes this attempt.
        last_error = std::move(handshake);
        continue;
      }
      ++stats_.resumes;
      stats_.stages_resumed += start_stage;
      for (uint32_t i = 0; i < start_stage; ++i) {
        stats_.crypto_ops_saved += source.stage_ops[i];
      }
    }

    Status stage_error = Status::OK();
    for (size_t i = start_stage; i < session->num_stages(); ++i) {
      session->current_stage_ops_ = 0;
      ++stats_.stages_run;
      if (stage_observer_) {
        stage_observer_(static_cast<uint32_t>(i), session->stage_name(i));
      }
      Status body = RunStage(session, i);
      stats_.crypto_ops_total += session->current_stage_ops_;
      if (i < completed_high_water_) {
        // Only reachable with resume_from_checkpoint off: the full-restart
        // baseline redoes work a checkpoint already holds.
        stats_.crypto_ops_recomputed += session->current_stage_ops_;
      }
      if (!body.ok()) {
        last_failed_stage_ = session->stage_name(i);
        stage_error = std::move(body);
        break;
      }
      ledger.push_back(session->current_stage_ops_);
      latest = Capture(*session, static_cast<uint32_t>(i) + 1, ledger);
      completed_high_water_ =
          std::max<uint32_t>(completed_high_water_, static_cast<uint32_t>(i) + 1);
      ++stats_.checkpoints_written;
      for (const auto& [party, blob] : latest.party_blobs) {
        (void)party;
        stats_.checkpoint_bytes += blob.size();
      }
      for (const auto& blob : latest.rng_blobs) {
        stats_.checkpoint_bytes += blob.size();
      }
    }
    if (stage_error.ok()) {
      // Fault layers can leave stale duplicates or just-released delayed
      // frames behind even on success; a clean session never leaks frames
      // into whatever runs next on this network.
      (void)net->DrainAll();
      return Status::OK();
    }
    last_error = std::move(stage_error);
  }
  (void)net->DrainAll();
  const std::string where = last_failed_stage_.empty()
                                ? std::string("resume handshake")
                                : "stage '" + last_failed_stage_ + "'";
  return Status::ProtocolError(
      "session '" + session->name_ + "' failed after " +
      std::to_string(stats_.attempts) + " attempt(s) in " + where +
      "; last error: " + last_error.message());
}

Status SessionOrchestrator::RunStage(ProtocolSession* session, size_t index) {
  return session->stage_bodies_[index]();
}

}  // namespace psi
