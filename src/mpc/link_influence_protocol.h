// Protocol 4 (Section 5.1): secure computation of link influence
// probabilities p_ij = b^h_ij / a_i for every arc of the host's graph.
//
// Pipeline:
//   1. H hides E inside a random superset E' (|E'| >= c|E|) and publishes
//      Omega_E' to the providers.                                [1 round]
//   2. The providers run batched Protocol 2 over all n + |E'| counters
//      (a_i and b^h_ij), leaving P1 and P2 with integer additive
//      shares; the counter order shown to the third party is scrambled by a
//      secret permutation shared by P1/P2.                       [4 rounds]
//   3. P1 and P2 jointly draw per-user masks M_i ~ Z, r_i ~ U(0, M_i)
//      and send H the r_i-scaled shares; H recombines and divides,
//      learning exactly the quotients (a Protocol 3 variant where the mask
//      multiplies the *shares*).                                 [3 rounds]
//
// The Eq. (2) temporally-weighted definition is supported by swapping the
// b-counters for fixed-point weighted sums sum_l W_l c^l_ij (the only change
// the paper prescribes); H descales after division.
//
// Masks travel as fixed-point big integers R_i = floor(r_i * 2^fraction_bits)
// so that share recombination at H cancels exactly even when S has hundreds
// of bits (see DESIGN.md §3, substitution table).

#ifndef PSI_MPC_LINK_INFLUENCE_PROTOCOL_H_
#define PSI_MPC_LINK_INFLUENCE_PROTOCOL_H_

#include <optional>
#include <string>
#include <vector>

#include "actionlog/action_log.h"
#include "actionlog/counters.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "influence/link_influence.h"
#include "mpc/secure_sum.h"
#include "mpc/session.h"
#include "net/network.h"

namespace psi {

/// \brief Registers Protocol 4's stage programs ("p4/counters") with the
/// global StageProgramRegistry. Idempotent; RunSession calls it, and the
/// psid execution engine calls it at startup so a daemon can run the
/// programs without ever driving a session.
void RegisterLinkInfluenceStagePrograms();

/// \brief Aggregated per-class counters held by a representative provider
/// after Protocol 5 (non-exclusive preprocessing). The representative feeds
/// them into Protocol 4 on behalf of its class group.
struct AggregatedClassCounters {
  /// a_i[A_q]: class actions performed by user i (any provider in the group).
  std::vector<uint64_t> a;
  /// c^l counters keyed by (i << 32 | j): value[l-1] is the exact-delay-l
  /// follow count. b^h is the prefix sum over l.
  std::unordered_map<uint64_t, std::vector<uint64_t>> c_by_delay;

  /// \brief b^h_ij derived from the delay histogram.
  uint64_t FollowCount(NodeId i, NodeId j, uint64_t h) const;
};

/// \brief How the provider counter vectors are turned into additive shares.
enum class P4Aggregation {
  /// Batched Protocol 2 (the paper's path, third party + permutation).
  kSecureSum,
  /// Packed Paillier aggregation (mpc/homomorphic_sum.h): k counters per
  /// ciphertext, CRT decryption, no third party. Falls back to kSecureSum
  /// when the counter bound A can't be proven for the actual inputs or no
  /// whole slot fits the key.
  kPaillierPacked,
};

/// \brief Protocol 4 parameters (public to all players).
struct Protocol4Config {
  uint64_t h = 4;                   ///< Memory window width.
  double obfuscation_factor = 2.0;  ///< The c > 1 of step 1.
  uint64_t epsilon_log2 = 40;       ///< Theorem 4.1 leakage budget 2^-eps.
  std::optional<BigUInt> modulus_s; ///< Explicit S override (kSecureSum only).
  bool use_secret_permutation = true;
  size_t fraction_bits = 64;        ///< Fixed-point resolution of r_i.
  std::optional<TemporalWeights> weights;  ///< Eq. (2) variant when set.
  uint64_t weight_scale = 1u << 16; ///< Fixed-point scale for w_l.
  P4Aggregation aggregation = P4Aggregation::kSecureSum;
  size_t paillier_bits = 512;       ///< Key size for kPaillierPacked.
};

/// \brief Observations recorded for the privacy tests.
struct Protocol4Views {
  std::vector<Arc> omega;  ///< The E' the providers saw (supersets E).
  /// Masked recombined values H obtained, per user / per Omega pair.
  std::vector<double> host_masked_a;
  std::vector<double> host_masked_b;
  SecureSumViews secure_sum;
  /// Whether the last run aggregated via packed Paillier (vs Protocol 2).
  bool used_packed_aggregation = false;
  /// Counters per Paillier ciphertext of the last packed run (1 otherwise).
  size_t packed_slots = 1;
};

/// \brief The counter vector one provider contributes to the batched secure
/// sum: [a_0..a_{n-1}, numerator(pair_0)..numerator(pair_{q-1})].
[[nodiscard]] Result<std::vector<uint64_t>> ComputeProviderCounterVector(
    const ActionLog& log, size_t num_users, const std::vector<Arc>& pairs,
    const Protocol4Config& config,
    const AggregatedClassCounters* extra = nullptr);

/// \brief Orchestrates Protocol 4 across the simulated network.
class LinkInfluenceProtocol {
 public:
  LinkInfluenceProtocol(Network* network, PartyId host,
                        std::vector<PartyId> providers, Protocol4Config config);

  /// \brief Runs the protocol.
  ///
  /// \param host_graph the host's private social graph.
  /// \param num_actions_public |A|, the public count of possible actions
  ///        (the counter bound A of Protocol 2).
  /// \param provider_logs the private action logs, one per provider.
  /// \param extras optional Protocol-5 aggregates; extras[k] (may be null)
  ///        is added to provider k's counters.
  /// \param pair_secret_rng pre-shared P1/P2 key material (permutation).
  /// \return p_ij for every arc of E, as computed by the host.
  [[nodiscard]] Result<LinkInfluence> Run(const SocialGraph& host_graph,
                            uint64_t num_actions_public,
                            const std::vector<ActionLog>& provider_logs,
                            Rng* host_rng,
                            const std::vector<Rng*>& provider_rngs,
                            Rng* pair_secret_rng,
                            const std::vector<const AggregatedClassCounters*>&
                                extras = {});

  /// \brief Runs the protocol as a checkpointed session (mpc/session.h):
  /// resumable stages (omega, one counters-P<k> per provider, aggregate,
  /// masks, masked-shares, recombine) under `retry`. A stage that fails — a
  /// provider crashed mid-round, an unrepairable channel — is replayed from
  /// the last checkpoint after a resume handshake, with all randomness
  /// rewound, so a recovered run returns bitwise the fault-free result. The
  /// counters-P<k> stages are registered stage programs ("p4/counters")
  /// placed on their providers: pass a RemoteSessionOrchestrator
  /// (mpc/remote_exec.h) as `orchestrator` to execute them on the
  /// providers' psid daemons; with the default orchestrator (nullptr: one
  /// is built from `retry`; when non-null, `retry` is ignored in favor of
  /// the orchestrator's own policy) they run in-process. A provider with a
  /// non-null extras[k] keeps a plain local stage (the Protocol-5
  /// aggregates are in-memory only). `Run` is exactly this with a single
  /// attempt. `stats_out` (optional) receives the session's SessionStats.
  [[nodiscard]] Result<LinkInfluence> RunSession(
      const SocialGraph& host_graph, uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs, Rng* host_rng,
      const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng,
      const RetryPolicy& retry, SessionStats* stats_out = nullptr,
      const std::vector<const AggregatedClassCounters*>& extras = {},
      SessionOrchestrator* orchestrator = nullptr);

  const Protocol4Views& views() const { return views_; }

  /// \brief The modulus used by the last run (auto-sized unless overridden).
  const BigUInt& modulus() const { return modulus_; }

 private:
  Network* network_;
  PartyId host_;
  std::vector<PartyId> providers_;
  Protocol4Config config_;
  Protocol4Views views_;
  BigUInt modulus_;
};

}  // namespace psi

#endif  // PSI_MPC_LINK_INFLUENCE_PROTOCOL_H_
