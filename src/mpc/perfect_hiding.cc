#include "mpc/perfect_hiding.h"

#include <cmath>

#include "common/serialize.h"
#include "crypto/oblivious_transfer.h"
#include "mpc/joint_random.h"
#include "mpc/secure_sum.h"

namespace psi {

size_t AllPairsIndex(NodeId i, NodeId j, size_t n) {
  PSI_DCHECK(i != j && i < n && j < n);
  size_t col = (j > i) ? static_cast<size_t>(j) - 1 : static_cast<size_t>(j);
  return static_cast<size_t>(i) * (n - 1) + col;
}

std::vector<Arc> AllOrderedPairs(size_t n) {
  std::vector<Arc> pairs;
  pairs.reserve(n * (n - 1));
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i != j) pairs.push_back(Arc{i, j});
    }
  }
  return pairs;
}

PerfectHidingLinkInfluenceProtocol::PerfectHidingLinkInfluenceProtocol(
    Network* network, PartyId host, std::vector<PartyId> providers,
    PerfectHidingConfig config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(config) {}

Result<LinkInfluence> PerfectHidingLinkInfluenceProtocol::Run(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng) {
  return DrainOnError(
      network_, RunImpl(host_graph, num_actions_public, provider_logs,
                        host_rng, provider_rngs, pair_secret_rng));
}

Result<LinkInfluence> PerfectHidingLinkInfluenceProtocol::RunImpl(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng) {
  const size_t m = providers_.size();
  const size_t n = host_graph.num_nodes();
  if (m < 2) return Status::InvalidArgument("need at least two providers");
  if (provider_logs.size() != m || provider_rngs.size() != m) {
    return Status::InvalidArgument("one log and rng per provider");
  }
  if (n < 2) return Status::InvalidArgument("need at least two users");

  // No Omega round: the pair list is the public all-pairs enumeration.
  std::vector<Arc> pairs = AllOrderedPairs(n);
  const size_t q = pairs.size();

  // ---- Batched Protocol 2 over [a | b(all pairs)]. ----
  Protocol4Config counter_cfg;
  counter_cfg.h = config_.h;
  std::vector<std::vector<uint64_t>> inputs(m);
  for (size_t k = 0; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(inputs[k],
                         ComputeProviderCounterVector(provider_logs[k], n,
                                                      pairs, counter_cfg));
  }
  BigUInt bound(num_actions_public);
  SecureSumConfig sum_config;
  sum_config.input_bound_a = bound;
  sum_config.modulus_s =
      RecommendedModulus(bound, n + q, config_.epsilon_log2);
  sum_config.use_secret_permutation = config_.use_secret_permutation;
  PartyId third_party = (m > 2) ? providers_[2] : host_;
  SecureSumProtocol secure_sum(network_, providers_, third_party, sum_config);
  PSI_ASSIGN_OR_RETURN(
      BatchedIntegerShares shares,
      secure_sum.RunProtocol2(inputs, provider_rngs, pair_secret_rng, "PH."));

  // ---- Joint per-user masks. ----
  PSI_ASSIGN_OR_RETURN(
      auto u_m, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                  provider_rngs[0], provider_rngs[1],
                                  "PH.Step5 (joint M_i)"));
  std::vector<double> m_values = ToZDistribution(u_m);
  PSI_ASSIGN_OR_RETURN(
      auto u_r, JointUniformBatch(network_, providers_[0], providers_[1], n,
                                  provider_rngs[0], provider_rngs[1],
                                  "PH.Step6 (joint r_i)"));
  PSI_ASSIGN_OR_RETURN(auto r_values, ToUniformBelow(u_r, m_values));
  std::vector<BigUInt> masks(n);
  for (size_t i = 0; i < n; ++i) {
    PSI_ASSIGN_OR_RETURN(
        masks[i],
        BigUIntFromDouble(std::ldexp(r_values[i],
                                     static_cast<int>(config_.fraction_bits))));
    if (masks[i].IsZero()) masks[i] = BigUInt(1);
  }

  // ---- Denominators travel openly (masked): they are per user, not per
  //      arc, so they reveal nothing about E. ----
  network_->BeginRound("PH.Steps7-8a (masked a shares -> H)");
  {
    BinaryWriter w1, w2;
    w1.WriteVarU64(n);
    w2.WriteVarU64(n);
    for (size_t i = 0; i < n; ++i) {
      WriteBigUInt(&w1, masks[i] * shares.s1[i]);
      WriteBigInt(&w2, BigInt(masks[i]) * shares.s2[i]);
    }
    PSI_RETURN_NOT_OK(network_->Send(providers_[0], host_, w1.TakeBuffer()));
    PSI_RETURN_NOT_OK(network_->Send(providers_[1], host_, w2.TakeBuffer()));
  }
  PSI_ASSIGN_OR_RETURN(auto buf1, network_->Recv(host_, providers_[0]));
  PSI_ASSIGN_OR_RETURN(auto buf2, network_->Recv(host_, providers_[1]));
  std::vector<BigUInt> masked_a(n);
  {
    BinaryReader r1(buf1), r2(buf2);
    uint64_t c1, c2;
    PSI_RETURN_NOT_OK(r1.ReadVarU64(&c1));
    PSI_RETURN_NOT_OK(r2.ReadVarU64(&c2));
    if (c1 != n || c2 != n) {
      return Status::ProtocolError("masked a-vector length mismatch");
    }
    for (size_t i = 0; i < n; ++i) {
      BigUInt v1;
      BigInt v2;
      PSI_RETURN_NOT_OK(ReadBigUInt(&r1, &v1));
      PSI_RETURN_NOT_OK(ReadBigInt(&r2, &v2));
      BigInt value = BigInt(v1) + v2;
      if (value.IsNegative()) {
        return Status::ProtocolError("negative recombined counter");
      }
      masked_a[i] = value.magnitude();
    }
  }

  // ---- Numerators via |E|-out-of-(n^2-n) oblivious transfer. ----
  // Message vectors: the masked b-share of every ordered pair.
  auto serialize_biguint = [](const BigUInt& v) {
    BinaryWriter w;
    WriteBigUInt(&w, v);
    return w.TakeBuffer();
  };
  auto serialize_bigint = [](const BigInt& v) {
    BinaryWriter w;
    WriteBigInt(&w, v);
    return w.TakeBuffer();
  };
  std::vector<std::vector<uint8_t>> p1_messages(q), p2_messages(q);
  for (size_t p = 0; p < q; ++p) {
    const BigUInt& mask = masks[pairs[p].from];
    p1_messages[p] = serialize_biguint(mask * shares.s1[n + p]);
    p2_messages[p] = serialize_bigint(BigInt(mask) * shares.s2[n + p]);
  }
  std::vector<size_t> choices;
  choices.reserve(host_graph.num_arcs());
  for (const Arc& a : host_graph.arcs()) {
    choices.push_back(AllPairsIndex(a.from, a.to, n));
  }

  PSI_ASSIGN_OR_RETURN(RsaKeyPair p1_keys,
                       RsaGenerateKeyPair(provider_rngs[0], config_.ot_rsa_bits));
  PSI_ASSIGN_OR_RETURN(RsaKeyPair p2_keys,
                       RsaGenerateKeyPair(provider_rngs[1], config_.ot_rsa_bits));
  PSI_ASSIGN_OR_RETURN(
      auto from_p1,
      RunObliviousTransfers(network_, providers_[0], host_, p1_messages,
                            choices, p1_keys, provider_rngs[0], host_rng,
                            "PH.P1."));
  PSI_ASSIGN_OR_RETURN(
      auto from_p2,
      RunObliviousTransfers(network_, providers_[1], host_, p2_messages,
                            choices, p2_keys, provider_rngs[1], host_rng,
                            "PH.P2."));

  // ---- Recombine and divide, per arc. ----
  LinkInfluence out;
  out.pairs = host_graph.arcs();
  out.p.resize(out.pairs.size());
  for (size_t e = 0; e < out.pairs.size(); ++e) {
    BinaryReader r1(from_p1[e]), r2(from_p2[e]);
    BigUInt v1;
    BigInt v2;
    PSI_RETURN_NOT_OK(ReadBigUInt(&r1, &v1));
    PSI_RETURN_NOT_OK(ReadBigInt(&r2, &v2));
    BigInt numer = BigInt(v1) + v2;
    if (numer.IsNegative()) {
      return Status::ProtocolError("negative recombined numerator");
    }
    const BigUInt& denom = masked_a[out.pairs[e].from];
    out.p[e] =
        denom.IsZero() ? 0.0 : DivideToDouble(numer.magnitude(), denom);
  }
  return out;
}

}  // namespace psi
