// Share representations produced by Protocols 1 and 2.

#ifndef PSI_MPC_SHARES_H_
#define PSI_MPC_SHARES_H_

#include <vector>

#include "bigint/bigint.h"
#include "bigint/biguint.h"

namespace psi {

/// \brief Modular additive shares: s1 + s2 == x (mod S). Held by P1 and P2
/// respectively (Protocol 1 output).
struct ModularShares {
  BigUInt s1;
  BigUInt s2;
};

/// \brief Integer additive shares: s1 + s2 == x exactly over the integers.
/// s2 may be negative after Protocol 2's correction step (s2 <- s2 - S).
struct IntegerShares {
  BigUInt s1;
  BigInt s2;

  /// \brief Reconstructs x (tests and the host-side recombination only).
  BigInt Reconstruct() const { return BigInt(s1) + s2; }
};

/// \brief Batched shares for a vector of counters, index-aligned.
struct BatchedModularShares {
  std::vector<BigUInt> s1;
  std::vector<BigUInt> s2;
};

/// \brief Batched integer shares (the state after batched Protocol 2).
struct BatchedIntegerShares {
  std::vector<BigUInt> s1;
  std::vector<BigInt> s2;

  size_t size() const { return s1.size(); }
  IntegerShares At(size_t i) const { return IntegerShares{s1[i], s2[i]}; }
};

}  // namespace psi

#endif  // PSI_MPC_SHARES_H_
