// Remote stage execution: psid daemons run their hosted party's stage
// programs, and the host orchestrates over the wire.
//
// Two halves, both built on the stage-program abstraction in mpc/session.h:
//
//   * StageExecutor is the daemon-side engine. tools/psid.cc installs its
//     Handler() as the PsidConfig::exec_handler; each kExec transport
//     message carries one sealed ProtocolId::kExec request envelope, the
//     executor runs the named registered program against its cached
//     (session, party) state, and the response envelope ships the
//     *daemon-side checkpoint* — post-stage SessionState plus advanced RNG
//     snapshots — back to the host, which commits it exactly as if the
//     stage had run in-process. A fresh daemon (restarted after SIGKILL)
//     holds no state and answers kNeedState; the host re-ships the last
//     committed checkpoint, which is the same restore the local resume path
//     performs. Completed results are cached per slot, so a retry of a call
//     whose answer was lost in flight (SIGSTOP, timeout) is served without
//     recomputing a single Paillier operation.
//
//   * RemoteSessionOrchestrator extends SessionOrchestrator: stages added
//     with AddRemoteStage are dispatched to the daemon hosting the
//     executing party whenever the session's Network implements
//     RemoteExecTransport (SocketNetwork does). Per stage it runs a bounded
//     retry loop — wall-clock deadline per attempt, seeded backoff,
//     Reestablish() between attempts — and when the budget is exhausted it
//     degrades to local (hairpin) execution: metered, logged at Warning,
//     never silent, and bitwise-identical because a stage program is a pure
//     function of (state, rngs). With allow_local_fallback off, exhaustion
//     is a clean ProtocolError naming the stage, program, party and attempt
//     count. Checkpointing, resume handshakes, and session-level retries
//     are inherited unchanged from the base orchestrator.
//
// Secrecy: exec request/response blobs contain exactly one party's durable
// state and RNG streams — key material included — and travel only on the
// link to that party's own daemon, which is that party's execution
// environment (the same trust domain that would hold the state in a real
// deployment). They never transit a peer party. The exec channel is
// transport traffic: it is counted in TransportStats, never in the protocol
// TrafficReport, so remote-executed transcripts stay bitwise-comparable
// with simulator runs (docs/TRANSPORT.md, "Remote execution").

#ifndef PSI_MPC_REMOTE_EXEC_H_
#define PSI_MPC_REMOTE_EXEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"
#include "mpc/session.h"
#include "mpc/wire.h"
#include "net/daemon.h"
#include "net/network.h"

namespace psi {

/// \brief Counters of the daemon-side execution engine.
struct StageExecutorStats {
  uint64_t requests = 0;          ///< kExec envelopes received.
  uint64_t executed = 0;          ///< Programs actually run.
  uint64_t cache_hits = 0;        ///< Duplicate requests served cached.
  uint64_t need_state = 0;        ///< Answered kNeedState (no local slot).
  uint64_t states_loaded = 0;     ///< Full state blobs installed.
  uint64_t unsupported = 0;       ///< Unknown program names.
  uint64_t program_errors = 0;    ///< Programs that ran and failed.
  uint64_t malformed = 0;         ///< Undecodable request frames.
  uint64_t crypto_ops = 0;        ///< Total ops metered by run programs.
};

/// \brief Daemon-side stage-program engine. Single-threaded, like the
/// PsidDaemon event loop that drives it.
class StageExecutor {
 public:
  /// \brief Handles one kExec request frame (a sealed ProtocolId::kExec
  /// envelope) and returns the sealed result envelope. Never throws, never
  /// crashes the daemon: malformed input and failed programs become kError
  /// responses with context.
  std::vector<uint8_t> Handle(const std::vector<uint8_t>& request_frame);

  /// \brief Adapter for PsidConfig::exec_handler.
  PsidExecHandler Handler();

  const StageExecutorStats& stats() const { return stats_; }

  /// \brief Number of live (session, party) state slots.
  size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot {
    /// Stages of the session completed up to and including the last run;
    /// a request for stage i is serviceable iff this equals i (fresh run)
    /// or i + 1 (duplicate of the run just completed -> cached response).
    uint32_t stages_completed = 0;
    SessionState state;
    bool has_cached = false;
    uint32_t cached_stage = 0;
    /// The full response of the last completed run, re-served (flagged
    /// from_cache) when the host retries a call whose answer it never saw.
    PSI_SECRET wire::ExecResponse cached;
  };

  wire::ExecResponse Dispatch(const wire::ExecRequest& req);

  std::map<std::string, Slot> slots_;  ///< Key: session + "#" + party.
  StageExecutorStats stats_;
};

/// \brief Retry budget of the host-side remote dispatch. Distinct from the
/// session-level RetryPolicy: this governs one stage's remote attempts;
/// the session policy governs whole-attempt replays after checkpoints.
struct RemoteExecPolicy {
  /// Remote tries per stage before degrading (or failing).
  uint32_t max_attempts_per_stage = 3;
  /// Wall-clock bound on one remote call when the stage's RemoteStageSpec
  /// does not pin its own deadline.
  uint64_t stage_deadline_ms = 2000;
  /// Backoff before remote attempt k sleeps min(base << (k-2), max) plus
  /// seeded jitter drawn uniformly from that same range.
  uint64_t backoff_base_ms = 2;
  uint64_t backoff_max_ms = 250;
  uint64_t seed = 0xd15ba7c4u;
  /// When true, an exhausted retry budget degrades the stage to local
  /// (hairpin) execution — metered and logged, bitwise-identical output.
  /// When false, exhaustion is a clean ProtocolError.
  bool allow_local_fallback = true;
};

/// \brief What the remote dispatch did across a session run.
struct RemoteExecStats {
  uint64_t remote_stages = 0;      ///< Stages committed from daemon results.
  uint64_t remote_calls = 0;       ///< kExec round trips attempted.
  uint64_t cache_hits = 0;         ///< Results the daemon served cached.
  uint64_t timeouts = 0;           ///< Calls that hit their deadline.
  uint64_t link_failures = 0;      ///< Calls that died with the link.
  uint64_t need_state_roundtrips = 0;  ///< kNeedState answers seen.
  uint64_t restores_shipped = 0;   ///< Requests that carried full state.
  uint64_t reestablishes = 0;      ///< Link repairs between attempts.
  uint64_t backoff_sleep_ms = 0;   ///< Total backoff slept, jitter included.
  uint64_t degraded_to_local = 0;  ///< Stages that fell back to hairpin.
  uint64_t unsupported = 0;        ///< kUnsupported / no-engine answers.
  uint64_t remote_crypto_ops = 0;  ///< Ops metered from daemon results.
};

/// \brief SessionOrchestrator that dispatches remote-placed stages to the
/// daemons hosting their executing parties. See the file comment.
class RemoteSessionOrchestrator : public SessionOrchestrator {
 public:
  RemoteSessionOrchestrator(RetryPolicy retry, RemoteExecPolicy exec)
      : SessionOrchestrator(retry),
        exec_policy_(exec),
        exec_backoff_rng_(exec.seed ^ 0x7e30c0ffee5eedULL) {}

  const RemoteExecStats& exec_stats() const { return exec_stats_; }

 protected:
  [[nodiscard]] Status RunStage(ProtocolSession* session,
                                size_t index) override;

 private:
  /// One sealed request -> decoded response round trip. `no_engine` is set
  /// (with an OK status) when the daemon answered with an empty body.
  [[nodiscard]] Result<wire::ExecResponse> CallOnce(
      ProtocolSession* session, RemoteExecTransport* net,
      const RemoteStageSpec& spec, size_t index, uint32_t attempt,
      bool include_state, uint64_t deadline_ms, bool* no_engine);

  /// Commits a kOk response: installs the daemon-side checkpoint into the
  /// session (party state, RNG streams, crypto-op meter).
  [[nodiscard]] Status ApplyResult(ProtocolSession* session,
                                   const RemoteStageSpec& spec, size_t index,
                                   const wire::ExecResponse& resp);

  RemoteExecPolicy exec_policy_;
  RemoteExecStats exec_stats_;
  Rng exec_backoff_rng_;
  /// Next stage index the party's daemon holds post-state for; a request
  /// for any other index must ship the state. Cleared on link trouble —
  /// the daemon answering after a reconnect may be a fresh process.
  std::map<PartyId, uint32_t> daemon_next_stage_;
};

}  // namespace psi

#endif  // PSI_MPC_REMOTE_EXEC_H_
