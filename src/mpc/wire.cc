#include "mpc/wire.h"

#include "common/serialize.h"

namespace psi {
namespace wire {

std::vector<uint8_t> PackArcs(const std::vector<Arc>& arcs) {
  BinaryWriter w;
  w.WriteVarU64(arcs.size());
  for (const Arc& a : arcs) {
    w.WriteU32(a.from);
    w.WriteU32(a.to);
  }
  return w.TakeBuffer();
}

Status UnpackArcs(const std::vector<uint8_t>& buf, std::vector<Arc>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/8));
  out->resize(count);
  for (auto& a : *out) {
    PSI_RETURN_NOT_OK(r.ReadU32(&a.from));
    PSI_RETURN_NOT_OK(r.ReadU32(&a.to));
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackBigUInts(const std::vector<BigUInt>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (const auto& x : v) WriteBigUInt(&w, x);
  return w.TakeBuffer();
}

Status UnpackBigUInts(const std::vector<uint8_t>& buf,
                      std::vector<BigUInt>* out) {
  BinaryReader r(buf);
  uint64_t count;
  // A serialized BigUInt is at least one byte (the varint limb count).
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/1));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(ReadBigUInt(&r, &x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackBigInts(const std::vector<BigInt>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (const auto& x : v) WriteBigInt(&w, x);
  return w.TakeBuffer();
}

Status UnpackBigInts(const std::vector<uint8_t>& buf, std::vector<BigInt>* out) {
  BinaryReader r(buf);
  uint64_t count;
  // A serialized BigInt is a sign byte plus at least a one-byte magnitude.
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/2));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(ReadBigInt(&r, &x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackU64s(const std::vector<uint64_t>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (uint64_t x : v) w.WriteU64(x);
  return w.TakeBuffer();
}

Status UnpackU64s(const std::vector<uint8_t>& buf, std::vector<uint64_t>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/8));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(r.ReadU64(&x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackRecords(const std::vector<ActionRecord>& records) {
  BinaryWriter w;
  w.WriteVarU64(records.size());
  for (const auto& r : records) {
    w.WriteU32(r.user);
    w.WriteU32(r.action);
    w.WriteU64(r.time);
  }
  return w.TakeBuffer();
}

Status UnpackRecords(const std::vector<uint8_t>& buf,
                     std::vector<ActionRecord>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/16));
  out->resize(count);
  for (auto& rec : *out) {
    PSI_RETURN_NOT_OK(r.ReadU32(&rec.user));
    PSI_RETURN_NOT_OK(r.ReadU32(&rec.action));
    PSI_RETURN_NOT_OK(r.ReadU64(&rec.time));
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

namespace {

void WriteRngBlobs(BinaryWriter* w, const std::vector<ExecRngBlob>& blobs) {
  w->WriteVarU64(blobs.size());
  for (const auto& [label, bytes] : blobs) {
    w->WriteString(label);
    w->WriteBytes(bytes);
  }
}

[[nodiscard]] Status ReadRngBlobs(BinaryReader* r,
                                  std::vector<ExecRngBlob>* out) {
  uint64_t count;
  // A labelled snapshot is at least a 1-byte label length plus a 1-byte
  // state length.
  PSI_RETURN_NOT_OK(r->ReadCount(&count, /*min_bytes_per_element=*/2));
  out->resize(count);
  for (auto& [label, bytes] : *out) {
    PSI_RETURN_NOT_OK(r->ReadString(&label));
    PSI_RETURN_NOT_OK(r->ReadBytes(&bytes));
  }
  return Status::OK();
}

[[nodiscard]] Status CheckExecVersion(BinaryReader* r) {
  uint32_t version = 0;
  PSI_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != kExecWireVersion) {
    return Status::SerializationError(
        "exec frame: unsupported version " + std::to_string(version) +
        " (want " + std::to_string(kExecWireVersion) + ")");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> PackExecRequest(const ExecRequest& req) {
  BinaryWriter w;
  w.WriteU32(kExecWireVersion);
  w.WriteString(req.session);
  w.WriteString(req.program);
  w.WriteU32(req.stage_index);
  w.WriteU32(req.attempt);
  w.WriteU32(req.party);
  w.WriteU8(req.includes_state ? 1 : 0);
  if (req.includes_state) w.WriteBytes(req.state_blob);
  WriteRngBlobs(&w, req.rng_blobs);
  return w.TakeBuffer();
}

Status UnpackExecRequest(const std::vector<uint8_t>& buf, ExecRequest* out) {
  BinaryReader r(buf);
  PSI_RETURN_NOT_OK(CheckExecVersion(&r));
  PSI_RETURN_NOT_OK(r.ReadString(&out->session));
  PSI_RETURN_NOT_OK(r.ReadString(&out->program));
  PSI_RETURN_NOT_OK(r.ReadU32(&out->stage_index));
  PSI_RETURN_NOT_OK(r.ReadU32(&out->attempt));
  PSI_RETURN_NOT_OK(r.ReadU32(&out->party));
  uint8_t includes = 0;
  PSI_RETURN_NOT_OK(r.ReadU8(&includes));
  if (includes > 1) {
    return Status::SerializationError("exec request: bad includes_state byte");
  }
  out->includes_state = includes == 1;
  out->state_blob.clear();
  out->rng_blobs.clear();
  if (out->includes_state) PSI_RETURN_NOT_OK(r.ReadBytes(&out->state_blob));
  PSI_RETURN_NOT_OK(ReadRngBlobs(&r, &out->rng_blobs));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackExecResponse(const ExecResponse& resp) {
  BinaryWriter w;
  w.WriteU32(kExecWireVersion);
  w.WriteU8(static_cast<uint8_t>(resp.outcome));
  w.WriteString(resp.message);
  w.WriteU8(resp.from_cache ? 1 : 0);
  w.WriteU64(resp.crypto_ops);
  const bool has_payload = resp.outcome == ExecOutcome::kOk;
  if (has_payload) {
    w.WriteBytes(resp.state_blob);
    WriteRngBlobs(&w, resp.rng_blobs);
  }
  return w.TakeBuffer();
}

Status UnpackExecResponse(const std::vector<uint8_t>& buf,
                          ExecResponse* out) {
  BinaryReader r(buf);
  PSI_RETURN_NOT_OK(CheckExecVersion(&r));
  uint8_t outcome = 0;
  PSI_RETURN_NOT_OK(r.ReadU8(&outcome));
  if (outcome > static_cast<uint8_t>(ExecOutcome::kUnsupported)) {
    return Status::SerializationError("exec response: unknown outcome " +
                                      std::to_string(outcome));
  }
  out->outcome = static_cast<ExecOutcome>(outcome);
  PSI_RETURN_NOT_OK(r.ReadString(&out->message));
  uint8_t cached = 0;
  PSI_RETURN_NOT_OK(r.ReadU8(&cached));
  if (cached > 1) {
    return Status::SerializationError("exec response: bad from_cache byte");
  }
  out->from_cache = cached == 1;
  PSI_RETURN_NOT_OK(r.ReadU64(&out->crypto_ops));
  out->state_blob.clear();
  out->rng_blobs.clear();
  if (out->outcome == ExecOutcome::kOk) {
    PSI_RETURN_NOT_OK(r.ReadBytes(&out->state_blob));
    PSI_RETURN_NOT_OK(ReadRngBlobs(&r, &out->rng_blobs));
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

}  // namespace wire
}  // namespace psi
