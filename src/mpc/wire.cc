#include "mpc/wire.h"

#include "common/serialize.h"

namespace psi {
namespace wire {

std::vector<uint8_t> PackArcs(const std::vector<Arc>& arcs) {
  BinaryWriter w;
  w.WriteVarU64(arcs.size());
  for (const Arc& a : arcs) {
    w.WriteU32(a.from);
    w.WriteU32(a.to);
  }
  return w.TakeBuffer();
}

Status UnpackArcs(const std::vector<uint8_t>& buf, std::vector<Arc>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/8));
  out->resize(count);
  for (auto& a : *out) {
    PSI_RETURN_NOT_OK(r.ReadU32(&a.from));
    PSI_RETURN_NOT_OK(r.ReadU32(&a.to));
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackBigUInts(const std::vector<BigUInt>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (const auto& x : v) WriteBigUInt(&w, x);
  return w.TakeBuffer();
}

Status UnpackBigUInts(const std::vector<uint8_t>& buf,
                      std::vector<BigUInt>* out) {
  BinaryReader r(buf);
  uint64_t count;
  // A serialized BigUInt is at least one byte (the varint limb count).
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/1));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(ReadBigUInt(&r, &x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackBigInts(const std::vector<BigInt>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (const auto& x : v) WriteBigInt(&w, x);
  return w.TakeBuffer();
}

Status UnpackBigInts(const std::vector<uint8_t>& buf, std::vector<BigInt>* out) {
  BinaryReader r(buf);
  uint64_t count;
  // A serialized BigInt is a sign byte plus at least a one-byte magnitude.
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/2));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(ReadBigInt(&r, &x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackU64s(const std::vector<uint64_t>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (uint64_t x : v) w.WriteU64(x);
  return w.TakeBuffer();
}

Status UnpackU64s(const std::vector<uint8_t>& buf, std::vector<uint64_t>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/8));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(r.ReadU64(&x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> PackRecords(const std::vector<ActionRecord>& records) {
  BinaryWriter w;
  w.WriteVarU64(records.size());
  for (const auto& r : records) {
    w.WriteU32(r.user);
    w.WriteU32(r.action);
    w.WriteU64(r.time);
  }
  return w.TakeBuffer();
}

Status UnpackRecords(const std::vector<uint8_t>& buf,
                     std::vector<ActionRecord>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count, /*min_bytes_per_element=*/16));
  out->resize(count);
  for (auto& rec : *out) {
    PSI_RETURN_NOT_OK(r.ReadU32(&rec.user));
    PSI_RETURN_NOT_OK(r.ReadU32(&rec.action));
    PSI_RETURN_NOT_OK(r.ReadU64(&rec.time));
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

}  // namespace wire
}  // namespace psi
