#include "mpc/homomorphic_sum.h"

#include <utility>

#include "bigint/modular.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "mpc/wire.h"

namespace psi {

namespace {

// Step tags for ProtocolId::kHomomorphicSum frames.
constexpr uint16_t kStepPublishKey = 1;
constexpr uint16_t kStepCiphertexts = 2;
constexpr uint16_t kStepAggregate = 3;

// The per-slot mask range: rho_c uniform in [0, B * m * 2^eps). The slot sum
// a P1 observes is sum_k x_k + rho_c with sum_k x_k <= B * m, so the
// statistical distance from a view independent of the inputs is <= 2^-eps.
BigUInt PackedMaskBound(const BigUInt& counter_bound, size_t num_players,
                        uint64_t epsilon_log2) {
  return (counter_bound * BigUInt(static_cast<uint64_t>(num_players)))
         << epsilon_log2;
}

}  // namespace

Result<PackingCodec> HomomorphicSumPackedCodec(size_t plaintext_bits,
                                               const BigUInt& counter_bound,
                                               size_t num_players,
                                               uint64_t epsilon_log2) {
  if (num_players < 2) {
    return Status::InvalidArgument("need at least two players");
  }
  if (counter_bound.IsZero()) {
    return Status::InvalidArgument("counter bound must be positive");
  }
  // Slot addends are the m - 1 ciphertexts P2 folds together. The largest
  // single addend is P2's own x_2 + rho_c <= counter_bound + mask bound, so
  // that is the codec's per-value bound; max_additions = m (>= m - 1) keeps
  // the guard bits comfortable.
  BigUInt mask_bound =
      PackedMaskBound(counter_bound, num_players, epsilon_log2);
  return PackingCodec::Create(plaintext_bits, mask_bound + counter_bound,
                              /*max_additions=*/num_players);
}

HomomorphicSumProtocol::HomomorphicSumProtocol(Network* network,
                                               std::vector<PartyId> players,
                                               HomomorphicSumConfig config)
    : network_(network),
      players_(std::move(players)),
      config_(std::move(config)) {}

HomomorphicSumProtocol::HomomorphicSumProtocol(Network* network,
                                               std::vector<PartyId> players,
                                               size_t paillier_bits)
    : HomomorphicSumProtocol(network, std::move(players),
                             HomomorphicSumConfig{paillier_bits, std::nullopt,
                                                  40}) {}

Status HomomorphicSumProtocol::ValidateInputs(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs) const {
  const size_t m = players_.size();
  if (m < 2) return Status::InvalidArgument("need at least two players");
  if (inputs.size() != m || player_rngs.size() != m) {
    return Status::InvalidArgument("one input vector and rng per player");
  }
  const size_t count = inputs[0].size();
  for (const auto& v : inputs) {
    if (v.size() != count) {
      return Status::InvalidArgument("all input vectors must share a length");
    }
  }
  return Status::OK();
}

bool HomomorphicSumProtocol::PackingApplies(
    const std::vector<std::vector<uint64_t>>& inputs) const {
  if (!config_.counter_bound.has_value()) return false;
  const BigUInt& bound = *config_.counter_bound;
  if (bound.IsZero()) return false;
  for (const auto& v : inputs) {
    for (uint64_t x : v) {
      if (BigUInt(x) > bound) return false;  // bound not proven: fall back.
    }
  }
  return true;
}

Result<BatchedModularShares> HomomorphicSumProtocol::Run(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  return DrainOnError(network_, RunImpl(inputs, player_rngs, label_prefix));
}

Result<BatchedIntegerShares> HomomorphicSumProtocol::RunInteger(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  return DrainOnError(network_,
                      RunIntegerImpl(inputs, player_rngs, label_prefix));
}

Result<BatchedModularShares> HomomorphicSumProtocol::RunImpl(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  PSI_RETURN_NOT_OK(ValidateInputs(inputs, player_rngs));
  last_run_packed_ = false;
  last_run_slots_ = 1;
  last_run_crypto_ops_ = 0;
  if (!PackingApplies(inputs)) {
    return RunUnpacked(inputs, player_rngs, label_prefix);
  }
  // The packing geometry needs the generated modulus' exact bit length, and
  // both paths generate the key first (identical RNG draws), so the final
  // packed-vs-unpacked decision happens after keygen.
  PSI_ASSIGN_OR_RETURN(
      PaillierKeyPair keys,
      PaillierGenerateKeyPair(player_rngs[0], config_.paillier_bits));
  ++last_run_crypto_ops_;  // keygen
  auto codec_or = HomomorphicSumPackedCodec(
      keys.public_key.n.BitLength() - 1, *config_.counter_bound,
      players_.size(), config_.packing_epsilon_log2);
  if (!codec_or.ok()) {
    // No whole slot fits this key size: run the classic path on this key.
    return RunUnpacked(keys, inputs, player_rngs, label_prefix);
  }
  PSI_ASSIGN_OR_RETURN(PackedOutcome packed,
                       RunPacked(keys, *codec_or, inputs, player_rngs,
                                 label_prefix));
  const size_t count = inputs[0].size();
  const BigUInt& N = keys.public_key.n;
  BatchedModularShares out;
  out.s1.resize(count);
  out.s2.resize(count);
  for (size_t c = 0; c < count; ++c) {
    // psi-lint: allow(secret-flow) operands are the public modulus and an already-masked share
    out.s1[c] = packed.masked[c] % N;
    // psi-lint: allow(secret-flow) operands are the public modulus and the player's own mask
    out.s2[c] = ModSub(BigUInt(), packed.rho[c] % N, N);  // -rho mod N.
  }
  return out;
}

Result<BatchedIntegerShares> HomomorphicSumProtocol::RunIntegerImpl(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  PSI_RETURN_NOT_OK(ValidateInputs(inputs, player_rngs));
  last_run_packed_ = false;
  last_run_slots_ = 1;
  last_run_crypto_ops_ = 0;
  if (!PackingApplies(inputs)) {
    return Status::FailedPrecondition(
        "integer shares need a proven counter bound; use the modular Run() "
        "or Protocol 2 instead");
  }
  PSI_ASSIGN_OR_RETURN(
      PaillierKeyPair keys,
      PaillierGenerateKeyPair(player_rngs[0], config_.paillier_bits));
  ++last_run_crypto_ops_;  // keygen
  PSI_ASSIGN_OR_RETURN(
      PackingCodec codec,
      HomomorphicSumPackedCodec(keys.public_key.n.BitLength() - 1,
                                *config_.counter_bound, players_.size(),
                                config_.packing_epsilon_log2));
  PSI_ASSIGN_OR_RETURN(
      PackedOutcome packed,
      RunPacked(keys, codec, inputs, player_rngs, label_prefix));
  const size_t count = inputs[0].size();
  BatchedIntegerShares out;
  out.s1 = std::move(packed.masked);  // sum + rho, exact over Z.
  out.s2.reserve(count);
  for (auto& r : packed.rho) {
    out.s2.emplace_back(std::move(r), /*negative=*/true);  // s2 = -rho.
  }
  return out;
}

Result<HomomorphicSumProtocol::PackedOutcome>
HomomorphicSumProtocol::RunPacked(
    const PaillierKeyPair& keys, const PackingCodec& codec,
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  const size_t m = players_.size();
  const size_t count = inputs[0].size();
  modulus_ = keys.public_key.n;
  // m - 1 ciphertexts are folded into the aggregate; refuse geometries
  // whose guard bits cannot absorb that many additions.
  PSI_RETURN_NOT_OK(codec.CheckAdditionBudget(m - 1));
  const size_t num_ct = codec.NumPlaintexts(count);

  // Round 1: P1 publishes the Paillier key.
  network_->BeginRound(label_prefix + "HSum.Step1 (P1 -> P_k: key)");
  {
    BinaryWriter w;
    WriteBigUInt(&w, keys.public_key.n);
    auto packed_key = w.TakeBuffer();
    for (size_t k = 1; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->SendFramed(players_[0], players_[k],
                                             ProtocolId::kHomomorphicSum,
                                             kStepPublishKey, packed_key));
    }
  }
  std::vector<PaillierPublicKey> pub(m);
  for (size_t k = 1; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[k], players_[0],
                                          ProtocolId::kHomomorphicSum,
                                          kStepPublishKey));
    BinaryReader r(buf);
    PSI_RETURN_NOT_OK(ReadBigUInt(&r, &pub[k].n));
    if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
    if (pub[k].n.IsZero()) {
      return Status::ProtocolError("received a zero Paillier modulus");
    }
    pub[k].n_squared = pub[k].n * pub[k].n;
  }
  // Every receiver derives the same packing geometry from the published
  // modulus and the public config; pub[k].n == keys.public_key.n here, so
  // the caller-built codec stands in for all parties.

  // Round 2: P3..Pm pack and encrypt their counter vectors for P2. The
  // randomizers still come out of each provider's RNG in sequential order;
  // only the r^n powers fan out (determinism contract).
  network_->BeginRound(label_prefix + "HSum.Step2 (P_k -> P2: E(pack(x_k)))");
  for (size_t k = 2; k < m; ++k) {
    std::vector<BigUInt> plain(count);
    for (size_t c = 0; c < count; ++c) plain[c] = BigUInt(inputs[k][c]);
    PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> packed, codec.Pack(plain));
    PSI_ASSIGN_OR_RETURN(
        std::vector<BigUInt> cts,
        PaillierEncryptBatch(pub[k], packed, player_rngs[k]));
    last_run_crypto_ops_ += cts.size();  // encryptions
    PSI_RETURN_NOT_OK(network_->SendFramed(players_[k], players_[1],
                                           ProtocolId::kHomomorphicSum,
                                           kStepCiphertexts,
                                           wire::PackBigUInts(cts)));
  }

  // P2 folds everything together with a per-slot statistical mask. Masks
  // are drawn serially on the protocol thread (determinism contract).
  const BigUInt mask_bound = PackedMaskBound(
      *config_.counter_bound, m, config_.packing_epsilon_log2);
  std::vector<BigUInt> rho(count);
  for (auto& x : rho) x = BigUInt::RandomBelow(player_rngs[1], mask_bound);
  std::vector<BigUInt> own(count);
  for (size_t c = 0; c < count; ++c) own[c] = BigUInt(inputs[1][c]) + rho[c];
  PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> own_packed, codec.Pack(own));
  PSI_ASSIGN_OR_RETURN(
      std::vector<BigUInt> aggregate,
      PaillierEncryptBatch(pub[1], own_packed, player_rngs[1]));
  last_run_crypto_ops_ += aggregate.size();  // encryptions
  for (size_t k = 2; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[1], players_[k],
                                          ProtocolId::kHomomorphicSum,
                                          kStepCiphertexts));
    std::vector<BigUInt> cts;
    PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &cts));
    if (cts.size() != num_ct) {
      return Status::ProtocolError("packed ciphertext vector length mismatch");
    }
    ParallelFor(num_ct, [&](size_t c) {
      aggregate[c] = PaillierAddCiphertexts(pub[1], aggregate[c], cts[c]);
    });
    last_run_crypto_ops_ += num_ct;  // homomorphic additions
  }

  // Round 3: the aggregate travels to P1.
  network_->BeginRound(label_prefix + "HSum.Step3 (P2 -> P1: aggregate)");
  PSI_RETURN_NOT_OK(network_->SendFramed(players_[1], players_[0],
                                         ProtocolId::kHomomorphicSum,
                                         kStepAggregate,
                                         wire::PackBigUInts(aggregate)));
  PSI_ASSIGN_OR_RETURN(
      auto buf, network_->RecvValidated(players_[0], players_[1],
                                        ProtocolId::kHomomorphicSum,
                                        kStepAggregate));
  std::vector<BigUInt> received;
  PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &received));
  if (received.size() != num_ct) {
    return Status::ProtocolError("aggregate vector length mismatch");
  }

  // P1: batched CRT decryption, then slot extraction. The slot sums never
  // wrap (guard bits sized for m additions), so the values are exact.
  PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> plains,
                       PaillierDecryptBatch(keys.private_key, received));
  last_run_crypto_ops_ += plains.size();  // decryptions
  PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> slots,
                       codec.Unpack(plains, count));
  PackedOutcome out;
  out.masked.resize(count);
  for (size_t c = 0; c < count; ++c) {
    out.masked[c] = slots[c] + BigUInt(inputs[0][c]);
  }
  out.rho = std::move(rho);
  last_run_packed_ = true;
  last_run_slots_ = codec.slots_per_plaintext();
  return out;
}

Result<BatchedModularShares> HomomorphicSumProtocol::RunUnpacked(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  PSI_ASSIGN_OR_RETURN(
      PaillierKeyPair keys,
      PaillierGenerateKeyPair(player_rngs[0], config_.paillier_bits));
  ++last_run_crypto_ops_;  // keygen
  return RunUnpacked(keys, inputs, player_rngs, label_prefix);
}

Result<BatchedModularShares> HomomorphicSumProtocol::RunUnpacked(
    const PaillierKeyPair& keys,
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  const size_t m = players_.size();
  const size_t count = inputs[0].size();
  modulus_ = keys.public_key.n;

  // Round 1: P1 publishes the Paillier key.
  network_->BeginRound(label_prefix + "HSum.Step1 (P1 -> P_k: key)");
  {
    BinaryWriter w;
    WriteBigUInt(&w, keys.public_key.n);
    auto packed = w.TakeBuffer();
    for (size_t k = 1; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->SendFramed(players_[0], players_[k],
                                             ProtocolId::kHomomorphicSum,
                                             kStepPublishKey, packed));
    }
  }
  std::vector<PaillierPublicKey> pub(m);
  for (size_t k = 1; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[k], players_[0],
                                          ProtocolId::kHomomorphicSum,
                                          kStepPublishKey));
    BinaryReader r(buf);
    PSI_RETURN_NOT_OK(ReadBigUInt(&r, &pub[k].n));
    if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
    if (pub[k].n.IsZero()) {
      return Status::ProtocolError("received a zero Paillier modulus");
    }
    pub[k].n_squared = pub[k].n * pub[k].n;
  }

  // Round 2: P3..Pm encrypt their counter vectors for P2 to aggregate.
  // Batch encryption: randomizers come out of each provider's RNG in the
  // same sequential order as the serial path; only the r^n powers fan out.
  network_->BeginRound(label_prefix + "HSum.Step2 (P_k -> P2: E(x_k))");
  for (size_t k = 2; k < m; ++k) {
    std::vector<BigUInt> plain(count);
    for (size_t c = 0; c < count; ++c) plain[c] = BigUInt(inputs[k][c]);
    PSI_ASSIGN_OR_RETURN(
        std::vector<BigUInt> cts,
        PaillierEncryptBatch(pub[k], plain, player_rngs[k]));
    last_run_crypto_ops_ += cts.size();  // encryptions
    PSI_RETURN_NOT_OK(network_->SendFramed(players_[k], players_[1],
                                           ProtocolId::kHomomorphicSum,
                                           kStepCiphertexts,
                                           wire::PackBigUInts(cts)));
  }

  // P2 aggregates homomorphically, folding in its own inputs and the mask.
  std::vector<BigUInt> rho(count);
  for (auto& x : rho) x = BigUInt::RandomBelow(player_rngs[1], pub[1].n);
  std::vector<BigUInt> own_plain(count);
  for (size_t c = 0; c < count; ++c) {
    own_plain[c] = (BigUInt(inputs[1][c]) + rho[c]) % pub[1].n;
  }
  PSI_ASSIGN_OR_RETURN(
      std::vector<BigUInt> aggregate,
      PaillierEncryptBatch(pub[1], own_plain, player_rngs[1]));
  last_run_crypto_ops_ += aggregate.size();  // encryptions
  for (size_t k = 2; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[1], players_[k],
                                          ProtocolId::kHomomorphicSum,
                                          kStepCiphertexts));
    std::vector<BigUInt> cts;
    PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &cts));
    if (cts.size() != count) {
      return Status::ProtocolError("ciphertext vector length mismatch");
    }
    ParallelFor(count, [&](size_t c) {
      aggregate[c] = PaillierAddCiphertexts(pub[1], aggregate[c], cts[c]);
    });
    last_run_crypto_ops_ += count;  // homomorphic additions
  }

  // Round 3: the aggregate travels to P1, who decrypts and adds its input.
  network_->BeginRound(label_prefix + "HSum.Step3 (P2 -> P1: aggregate)");
  PSI_RETURN_NOT_OK(network_->SendFramed(players_[1], players_[0],
                                         ProtocolId::kHomomorphicSum,
                                         kStepAggregate,
                                         wire::PackBigUInts(aggregate)));
  PSI_ASSIGN_OR_RETURN(
      auto buf, network_->RecvValidated(players_[0], players_[1],
                                        ProtocolId::kHomomorphicSum,
                                        kStepAggregate));
  std::vector<BigUInt> received;
  PSI_RETURN_NOT_OK(wire::UnpackBigUInts(buf, &received));
  if (received.size() != count) {
    return Status::ProtocolError("aggregate vector length mismatch");
  }

  // CRT-accelerated batched decryption (same values as the classic path).
  PSI_ASSIGN_OR_RETURN(std::vector<BigUInt> masked,
                       PaillierDecryptBatch(keys.private_key, received));
  last_run_crypto_ops_ += masked.size();  // decryptions
  BatchedModularShares out;
  out.s1.resize(count);
  out.s2.resize(count);
  const BigUInt& N = keys.public_key.n;
  for (size_t c = 0; c < count; ++c) {
    out.s1[c] = ModAdd(masked[c], BigUInt(inputs[0][c]) % N, N);
    out.s2[c] = ModSub(BigUInt(), rho[c], N);  // -rho mod N.
  }
  return out;
}

}  // namespace psi
