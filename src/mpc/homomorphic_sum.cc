#include "mpc/homomorphic_sum.h"

#include "bigint/modular.h"
#include "common/serialize.h"
#include "common/thread_pool.h"

namespace psi {

namespace {

// Step tags for ProtocolId::kHomomorphicSum frames.
constexpr uint16_t kStepPublishKey = 1;
constexpr uint16_t kStepCiphertexts = 2;
constexpr uint16_t kStepAggregate = 3;

std::vector<uint8_t> PackBigUInts(const std::vector<BigUInt>& v) {
  BinaryWriter w;
  w.WriteVarU64(v.size());
  for (const auto& x : v) WriteBigUInt(&w, x);
  return w.TakeBuffer();
}

Status UnpackBigUInts(const std::vector<uint8_t>& buf,
                      std::vector<BigUInt>* out) {
  BinaryReader r(buf);
  uint64_t count;
  PSI_RETURN_NOT_OK(r.ReadCount(&count));
  out->resize(count);
  for (auto& x : *out) PSI_RETURN_NOT_OK(ReadBigUInt(&r, &x));
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

}  // namespace

HomomorphicSumProtocol::HomomorphicSumProtocol(Network* network,
                                               std::vector<PartyId> players,
                                               size_t paillier_bits)
    : network_(network),
      players_(std::move(players)),
      paillier_bits_(paillier_bits) {}

Result<BatchedModularShares> HomomorphicSumProtocol::Run(
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<Rng*>& player_rngs, const std::string& label_prefix) {
  const size_t m = players_.size();
  if (m < 2) return Status::InvalidArgument("need at least two players");
  if (inputs.size() != m || player_rngs.size() != m) {
    return Status::InvalidArgument("one input vector and rng per player");
  }
  const size_t count = inputs[0].size();
  for (const auto& v : inputs) {
    if (v.size() != count) {
      return Status::InvalidArgument("all input vectors must share a length");
    }
  }

  // Round 1: P1 generates and publishes the Paillier key.
  PSI_ASSIGN_OR_RETURN(PaillierKeyPair keys,
                       PaillierGenerateKeyPair(player_rngs[0], paillier_bits_));
  modulus_ = keys.public_key.n;
  network_->BeginRound(label_prefix + "HSum.Step1 (P1 -> P_k: key)");
  {
    BinaryWriter w;
    WriteBigUInt(&w, keys.public_key.n);
    auto packed = w.TakeBuffer();
    for (size_t k = 1; k < m; ++k) {
      PSI_RETURN_NOT_OK(network_->SendFramed(players_[0], players_[k],
                                             ProtocolId::kHomomorphicSum,
                                             kStepPublishKey, packed));
    }
  }
  std::vector<PaillierPublicKey> pub(m);
  for (size_t k = 1; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[k], players_[0],
                                          ProtocolId::kHomomorphicSum,
                                          kStepPublishKey));
    BinaryReader r(buf);
    PSI_RETURN_NOT_OK(ReadBigUInt(&r, &pub[k].n));
    if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
    if (pub[k].n.IsZero()) {
      return Status::ProtocolError("received a zero Paillier modulus");
    }
    pub[k].n_squared = pub[k].n * pub[k].n;
  }

  // Round 2: P3..Pm encrypt their counter vectors for P2 to aggregate.
  // Batch encryption: randomizers come out of each provider's RNG in the
  // same sequential order as the serial path; only the r^n powers fan out.
  network_->BeginRound(label_prefix + "HSum.Step2 (P_k -> P2: E(x_k))");
  for (size_t k = 2; k < m; ++k) {
    std::vector<BigUInt> plain(count);
    for (size_t c = 0; c < count; ++c) plain[c] = BigUInt(inputs[k][c]);
    PSI_ASSIGN_OR_RETURN(
        std::vector<BigUInt> cts,
        PaillierEncryptBatch(pub[k], plain, player_rngs[k]));
    PSI_RETURN_NOT_OK(network_->SendFramed(players_[k], players_[1],
                                           ProtocolId::kHomomorphicSum,
                                           kStepCiphertexts,
                                           PackBigUInts(cts)));
  }

  // P2 aggregates homomorphically, folding in its own inputs and the mask.
  std::vector<BigUInt> rho(count);
  for (auto& x : rho) x = BigUInt::RandomBelow(player_rngs[1], pub[1].n);
  std::vector<BigUInt> own_plain(count);
  for (size_t c = 0; c < count; ++c) {
    own_plain[c] = (BigUInt(inputs[1][c]) + rho[c]) % pub[1].n;
  }
  PSI_ASSIGN_OR_RETURN(
      std::vector<BigUInt> aggregate,
      PaillierEncryptBatch(pub[1], own_plain, player_rngs[1]));
  for (size_t k = 2; k < m; ++k) {
    PSI_ASSIGN_OR_RETURN(
        auto buf, network_->RecvValidated(players_[1], players_[k],
                                          ProtocolId::kHomomorphicSum,
                                          kStepCiphertexts));
    std::vector<BigUInt> cts;
    PSI_RETURN_NOT_OK(UnpackBigUInts(buf, &cts));
    if (cts.size() != count) {
      return Status::ProtocolError("ciphertext vector length mismatch");
    }
    ParallelFor(count, [&](size_t c) {
      aggregate[c] = PaillierAddCiphertexts(pub[1], aggregate[c], cts[c]);
    });
  }

  // Round 3: the aggregate travels to P1, who decrypts and adds its input.
  network_->BeginRound(label_prefix + "HSum.Step3 (P2 -> P1: aggregate)");
  PSI_RETURN_NOT_OK(network_->SendFramed(players_[1], players_[0],
                                         ProtocolId::kHomomorphicSum,
                                         kStepAggregate,
                                         PackBigUInts(aggregate)));
  PSI_ASSIGN_OR_RETURN(
      auto buf, network_->RecvValidated(players_[0], players_[1],
                                        ProtocolId::kHomomorphicSum,
                                        kStepAggregate));
  std::vector<BigUInt> received;
  PSI_RETURN_NOT_OK(UnpackBigUInts(buf, &received));
  if (received.size() != count) {
    return Status::ProtocolError("aggregate vector length mismatch");
  }

  BatchedModularShares out;
  out.s1.resize(count);
  out.s2.resize(count);
  const BigUInt& N = keys.public_key.n;
  // Per-counter decryption is pure (c^lambda mod n^2), so it fans out.
  PSI_RETURN_NOT_OK(ParallelForStatus(count, [&](size_t c) -> Status {
    PSI_ASSIGN_OR_RETURN(BigUInt masked,
                         PaillierDecrypt(keys.private_key, received[c]));
    out.s1[c] = ModAdd(masked, BigUInt(inputs[0][c]) % N, N);
    out.s2[c] = ModSub(BigUInt(), rho[c], N);  // -rho mod N.
    return Status::OK();
  }));
  return out;
}

}  // namespace psi
