#include "mpc/class_aggregation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/serialize.h"
#include "crypto/permutation.h"
#include "crypto/shift_cipher.h"
#include "mpc/wire.h"

namespace psi {

namespace {

uint64_t PairKey(NodeId i, NodeId j) {
  return (static_cast<uint64_t>(i) << 32) | j;
}

}  // namespace

namespace internal {

std::vector<uint8_t> PackCounters(const internal::ObfuscatedCounters& counters,
                                  uint64_t h) {
  BinaryWriter w;
  w.WriteVarU64(counters.a.size());
  for (const auto& [user, count] : counters.a) {
    w.WriteU32(user);
    w.WriteVarU64(count);
  }
  w.WriteVarU64(counters.c.size());
  for (const auto& [key, by_delay] : counters.c) {
    w.WriteU64(key);
    for (uint64_t l = 0; l < h; ++l) w.WriteVarU64(by_delay[l]);
  }
  return w.TakeBuffer();
}

Status UnpackCounters(const std::vector<uint8_t>& buf, uint64_t h,
                      internal::ObfuscatedCounters* out) {
  BinaryReader r(buf);
  uint64_t a_count;
  // An a-entry is a u32 user plus a varint count: at least 5 bytes.
  PSI_RETURN_NOT_OK(r.ReadCount(&a_count, /*min_bytes_per_element=*/5));
  out->a.reserve(a_count);
  for (uint64_t i = 0; i < a_count; ++i) {
    uint32_t user;
    uint64_t count;
    PSI_RETURN_NOT_OK(r.ReadU32(&user));
    PSI_RETURN_NOT_OK(r.ReadVarU64(&count));
    out->a.emplace(user, count);
  }
  uint64_t c_count;
  // A c-entry is a u64 key plus h varints: at least 8 + h bytes.
  PSI_RETURN_NOT_OK(r.ReadCount(&c_count, /*min_bytes_per_element=*/8 + h));
  out->c.reserve(c_count);
  for (uint64_t i = 0; i < c_count; ++i) {
    uint64_t key;
    PSI_RETURN_NOT_OK(r.ReadU64(&key));
    std::vector<uint64_t> by_delay(h);
    for (uint64_t l = 0; l < h; ++l) {
      PSI_RETURN_NOT_OK(r.ReadVarU64(&by_delay[l]));
    }
    out->c.emplace(key, std::move(by_delay));
  }
  if (!r.AtEnd()) return Status::SerializationError("trailing bytes");
  return Status::OK();
}

}  // namespace internal

std::pair<ActionLog, ActionLog> SplitOutClass(
    const ActionLog& log, const std::vector<uint32_t>& class_of_action,
    uint32_t q) {
  ActionLog in_class, remainder;
  for (const auto& r : log.records()) {
    bool is_class =
        r.action < class_of_action.size() && class_of_action[r.action] == q;
    (is_class ? in_class : remainder).Add(r);
  }
  return {std::move(in_class), std::move(remainder)};
}

ClassAggregationProtocol::ClassAggregationProtocol(Network* network,
                                                   std::vector<PartyId> group,
                                                   PartyId aggregator,
                                                   Protocol5Config config)
    : network_(network),
      group_(std::move(group)),
      aggregator_(aggregator),
      config_(config) {}

Result<AggregatedClassCounters> ClassAggregationProtocol::Run(
    const std::vector<ActionLog>& class_logs, size_t num_users,
    Rng* group_secret_rng, const std::string& label_prefix) {
  return DrainOnError(
      network_, RunImpl(class_logs, num_users, group_secret_rng, label_prefix));
}

Result<AggregatedClassCounters> ClassAggregationProtocol::RunImpl(
    const std::vector<ActionLog>& class_logs, size_t num_users,
    Rng* group_secret_rng, const std::string& label_prefix) {
  const size_t d = group_.size();
  if (d == 0) return Status::InvalidArgument("empty provider group");
  if (class_logs.size() != d) {
    return Status::InvalidArgument("one class log per group member");
  }
  for (PartyId p : group_) {
    if (p == aggregator_) {
      return Status::InvalidArgument("aggregator must be outside the group");
    }
  }
  const bool enhanced = config_.method == ObfuscationMethod::kEnhanced;
  uint64_t frame_t = config_.time_frame_t;
  if (frame_t == 0) {
    return Status::InvalidArgument("time_frame_t must be set (public T)");
  }
  for (const auto& log : class_logs) {
    if (log.MaxTime() >= frame_t) {
      return Status::OutOfRange("record timestamp >= public frame T");
    }
  }
  const uint64_t frame = frame_t + config_.h;  // S' = T + h.

  // ---- Shared secrets (derived from the group's pre-shared key). ----
  const size_t num_fake = enhanced ? config_.num_fake_users : 0;
  SecretInjection user_map =
      SecretInjection::Random(group_secret_rng, num_users, num_fake);
  ShiftCipher time_cipher = enhanced
                                ? ShiftCipher::Random(group_secret_rng, frame)
                                : ShiftCipher(0, frame);

  // Shared action pseudonyms: distinct random u32 per real action id that
  // appears in the class (derived identically by every provider from the
  // shared key; the class's action universe is public).
  std::unordered_set<ActionId> class_actions;
  for (const auto& log : class_logs) {
    for (const auto& r : log.records()) class_actions.insert(r.action);
  }
  std::vector<ActionId> sorted_actions(class_actions.begin(),
                                       class_actions.end());
  std::sort(sorted_actions.begin(), sorted_actions.end());
  std::unordered_map<ActionId, uint32_t> pseudonym;
  std::unordered_set<uint32_t> used_pseudonyms;
  for (ActionId a : sorted_actions) {
    uint32_t p;
    do {
      p = group_secret_rng->NextU32();
    } while (!used_pseudonyms.insert(p).second);
    pseudonym.emplace(a, p);
  }

  // ---- Step 2: each provider obfuscates and ships its log. ----
  network_->BeginRound(label_prefix + "P5.Step2 (obfuscated logs to P-hat)");
  std::vector<size_t> fake_user_pool = user_map.FakeIds();
  for (size_t k = 0; k < d; ++k) {
    std::vector<ActionRecord> obf;
    obf.reserve(class_logs[k].size());
    std::vector<uint64_t> per_time(enhanced ? frame : 0, 0);
    for (const auto& r : class_logs[k].records()) {
      ActionRecord o;
      o.user = static_cast<NodeId>(user_map.Apply(r.user));
      o.action = pseudonym.at(r.action);
      o.time = enhanced ? time_cipher.Encrypt(r.time) : r.time;
      obf.push_back(o);
      if (enhanced) ++per_time[time_cipher.Encrypt(r.time)];
    }
    if (enhanced && !fake_user_pool.empty()) {
      // Pad every encrypted timestamp up to W_k with fake single-use records.
      uint64_t w_max = 0;
      for (uint64_t c : per_time) w_max = std::max(w_max, c);
      if (w_max == 0) w_max = 1;  // Even an empty log emits uniform noise.
      // Fake pseudonyms come from the provider's own randomness; they are
      // single-use so they can never form follow pairs.
      Rng local = group_secret_rng->Fork("fakes-" + std::to_string(k));
      for (uint64_t t = 0; t < frame; ++t) {
        for (uint64_t fill = per_time[t]; fill < w_max; ++fill) {
          ActionRecord o;
          const uint64_t pick = local.UniformU64(fake_user_pool.size());
          // psi-lint: allow(secret-flow) the index is a uniform draw the provider publishes anyway as the fake pseudonym
          o.user = static_cast<NodeId>(fake_user_pool[pick]);
          o.action = local.NextU32();
          o.time = t;
          obf.push_back(o);
        }
      }
    }
    // Shuffle so record order reveals nothing about real-vs-fake.
    Rng shuffle_rng = group_secret_rng->Fork("shuffle-" + std::to_string(k));
    shuffle_rng.Shuffle(&obf);
    PSI_RETURN_NOT_OK(network_->Send(group_[k], aggregator_, wire::PackRecords(obf)));
  }

  // ---- Steps 3-4: the aggregator merges and counts. ----
  std::vector<ActionRecord> merged;
  views_.aggregator_logs.clear();
  for (size_t k = 0; k < d; ++k) {
    PSI_ASSIGN_OR_RETURN(auto buf, network_->Recv(aggregator_, group_[k]));
    std::vector<ActionRecord> records;
    PSI_RETURN_NOT_OK(wire::UnpackRecords(buf, &records));
    views_.aggregator_logs.push_back(records);
    merged.insert(merged.end(), records.begin(), records.end());
  }

  internal::ObfuscatedCounters counters;
  std::unordered_map<uint32_t, std::vector<ActionRecord>> by_action;
  for (const auto& r : merged) {
    ++counters.a[r.user];
    by_action[r.action].push_back(r);
  }
  for (const auto& [action, records] : by_action) {
    for (const auto& first : records) {
      for (const auto& second : records) {
        if (first.user == second.user) continue;
        uint64_t diff;
        if (enhanced) {
          // Cyclic difference within the frame (condition (12)).
          diff = (second.time + frame - first.time) % frame;
        } else {
          if (second.time <= first.time) continue;
          diff = second.time - first.time;
        }
        if (diff >= 1 && diff <= config_.h) {
          auto [it, inserted] = counters.c.try_emplace(
              PairKey(first.user, second.user),
              std::vector<uint64_t>(config_.h, 0));
          ++it->second[diff - 1];
        }
      }
    }
  }

  // ---- Step 5: nonzero counters return to the representative. ----
  network_->BeginRound(label_prefix + "P5.Step5 (counters to representative)");
  PSI_RETURN_NOT_OK(network_->Send(aggregator_, group_[0],
                                   internal::PackCounters(counters, config_.h)));

  // ---- Step 6: the representative recovers the true counters. ----
  PSI_ASSIGN_OR_RETURN(auto buf, network_->Recv(group_[0], aggregator_));
  internal::ObfuscatedCounters received;
  PSI_RETURN_NOT_OK(internal::UnpackCounters(buf, config_.h, &received));

  AggregatedClassCounters out;
  out.a.assign(num_users, 0);
  for (const auto& [obf_user, count] : received.a) {
    size_t real = user_map.InvertOrFake(obf_user);
    if (real == SIZE_MAX) continue;  // Fake user: discard.
    out.a[real] += count;
  }
  for (const auto& [key, by_delay] : received.c) {
    auto i_obf = static_cast<uint32_t>(key >> 32);
    auto j_obf = static_cast<uint32_t>(key & 0xffffffffu);
    size_t i_real = user_map.InvertOrFake(i_obf);
    size_t j_real = user_map.InvertOrFake(j_obf);
    if (i_real == SIZE_MAX || j_real == SIZE_MAX) continue;
    auto [it, inserted] = out.c_by_delay.try_emplace(
        PairKey(static_cast<NodeId>(i_real), static_cast<NodeId>(j_real)),
        std::vector<uint64_t>(config_.h, 0));
    for (uint64_t l = 0; l < config_.h; ++l) it->second[l] += by_delay[l];
  }
  return out;
}

}  // namespace psi
