// Extension: secure segment-conditioned link influence.
//
// Same structure as Protocol 4, with the counter batch widened to one block
// per segment: [a[0] | .. | a[G-1] | b[0](Omega) | .. | b[G-1](Omega)].
// All G*(n + q) counters share ONE batched Protocol 2 execution, so the
// round count stays at Protocol 4's eight.
//
// Masking note: the division masks are drawn per (user, segment), not per
// user. A single per-user mask would let H compute the exact ratios
// a_i[g1]/a_i[g2] (relative category activity of each user), which the
// pooled output does not imply; per-(user, segment) masks keep the leakage
// to exactly the per-segment quotients.

#ifndef PSI_MPC_SEGMENTED_INFLUENCE_H_
#define PSI_MPC_SEGMENTED_INFLUENCE_H_

#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "influence/segmented.h"
#include "mpc/link_influence_protocol.h"
#include "net/network.h"

namespace psi {

/// \brief Orchestrates the segmented Protocol 4 variant.
class SegmentedInfluenceProtocol {
 public:
  SegmentedInfluenceProtocol(Network* network, PartyId host,
                             std::vector<PartyId> providers,
                             Protocol4Config config);

  /// \brief Runs the protocol.
  ///
  /// \param segment_of_action public segment label per action id.
  /// \param num_segments G.
  /// \return per-segment strengths for every arc of E, at the host.
  [[nodiscard]] Result<SegmentedLinkInfluence> Run(
      const SocialGraph& host_graph, uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs,
      const std::vector<uint32_t>& segment_of_action, uint32_t num_segments,
      Rng* host_rng, const std::vector<Rng*>& provider_rngs,
      Rng* pair_secret_rng);

 private:
  // The protocol body; the public entry drains mailboxes on error.
  [[nodiscard]] Result<SegmentedLinkInfluence> RunImpl(
      const SocialGraph& host_graph, uint64_t num_actions_public,
      const std::vector<ActionLog>& provider_logs,
      const std::vector<uint32_t>& segment_of_action, uint32_t num_segments,
      Rng* host_rng, const std::vector<Rng*>& provider_rngs,
      Rng* pair_secret_rng);

  Network* network_;
  PartyId host_;
  std::vector<PartyId> providers_;
  Protocol4Config config_;
};

}  // namespace psi

#endif  // PSI_MPC_SEGMENTED_INFLUENCE_H_
