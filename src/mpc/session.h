// Checkpointed protocol sessions: crash-restart recovery for long MPC runs.
//
// A ProtocolSession runs a protocol driver as a sequence of named stages.
// After every completed stage the SessionOrchestrator captures a checkpoint:
// each party's durable key/value SessionState plus a snapshot of every
// registered RNG stream. When a stage fails (a party crashed mid-round, the
// channel could not be repaired, a peer sent garbage), the orchestrator
// backs off a bounded, seeded number of rounds, restores every party from
// the last checkpoint, performs a resume handshake — re-synchronizing the
// per-channel envelope sequence counters and draining stale mailboxes — and
// replays only the failed stage. Because the RNG snapshots rewind the
// randomness along with the state, a replayed stage re-derives bitwise the
// same masks, shares and ciphertexts, so a recovered run converges to the
// exact fault-free transcript (the chaos harness pins this).
//
// Secrecy: checkpoints hold exactly what the parties already hold — key
// material, masks, shares, RNG streams. They are process-local durable
// storage and NEVER cross the wire; the only session traffic is the resume
// handshake, whose payload is two public counters (attempt, next stage).
// Checkpoint buffers are PSI_SECRET-annotated and psi_lint-audited
// (docs/FAULTS.md has the full secrecy argument).

#ifndef PSI_MPC_SESSION_H_
#define PSI_MPC_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"
#include "net/network.h"

namespace psi {

/// \brief Version tag of the SessionState wire format.
inline constexpr uint32_t kSessionStateVersion = 1;

/// \brief Step tag of the resume-handshake sync frame (ProtocolId::kSession).
inline constexpr uint16_t kSessionStepResumeSync = 1;

/// \brief One party's durable per-session store: named byte blobs written by
/// stage bodies and restored verbatim on recovery.
///
/// Values are opaque to the session layer; stages encode them with the
/// hardened mpc/wire.h codecs. Stage bodies routinely stash wire payloads
/// (ciphertexts, masked shares) here and re-send them on resume, so the
/// store itself is not PSI_SECRET — the taint engine tracks the underlying
/// plaintexts at their source instead. The durable serialized form IS
/// sensitive (it can embed private keys and RNG snapshots): Checkpoint's
/// party_blobs/rng_blobs carry the PSI_SECRET annotation and must only ever
/// travel to durable storage, never to a peer.
class SessionState {
 public:
  /// \brief Inserts or overwrites the blob under `key`.
  void Put(const std::string& key, std::vector<uint8_t> value);

  /// \brief True if a blob is stored under `key`.
  bool Has(const std::string& key) const;

  /// \brief The blob under `key`, or FailedPrecondition if absent (a stage
  /// reading state its predecessors never wrote is a driver bug).
  [[nodiscard]] Result<std::vector<uint8_t>> Get(const std::string& key) const;

  /// \brief Removes all entries.
  void Clear();

  size_t NumEntries() const;

  /// \brief Total stored bytes (keys + values).
  uint64_t ByteSize() const;

  /// \brief Versioned serialization: u32 version, varint entry count, then
  /// (string key, bytes value) pairs in key order.
  [[nodiscard]] std::vector<uint8_t> Serialize() const;

  /// \brief Parses a Serialize() buffer. Returns SerializationError on a
  /// version mismatch, truncation, an oversized count, duplicate keys, or
  /// trailing bytes — a damaged checkpoint is rejected, never half-loaded.
  [[nodiscard]] static Result<SessionState> Deserialize(
      const std::vector<uint8_t>& buf);

 private:
  std::map<std::string, std::vector<uint8_t>> entries_;
};

/// \brief Deterministic retry schedule for a session run.
struct RetryPolicy {
  /// Total tries of the stage sequence (1 = no recovery, fail fast).
  uint32_t max_attempts = 3;
  /// Rounds waited before retry r is base << (r-2), capped below. Each
  /// waited round is a real BeginRound, so crash-restart windows measured
  /// in rounds (net/fault.h) make progress while the session waits.
  uint64_t backoff_rounds_base = 1;
  uint64_t backoff_rounds_cap = 8;
  /// Extra rounds drawn uniformly from [0, jitter] per retry, from a stream
  /// seeded by `seed` (deterministic, independent of protocol randomness).
  uint64_t backoff_jitter_rounds = 1;
  uint64_t seed = 0x5e5510u;
  /// When false, every retry restarts from the initial checkpoint instead
  /// of the latest one — the "no recovery layer" baseline the recovery
  /// bench compares against. Completed crypto work is then redone and shows
  /// up in SessionStats::crypto_ops_recomputed.
  bool resume_from_checkpoint = true;
};

/// \brief What a session run did: attempts, checkpoint volume, handshake
/// traffic, and the crypto-op ledger proving checkpointed work is not
/// redone.
struct SessionStats {
  uint32_t attempts = 0;         ///< Tries of the stage sequence (>= 1).
  uint32_t resumes = 0;          ///< Successful resume handshakes.
  uint64_t stages_run = 0;       ///< Stage executions, including replays.
  uint64_t stages_resumed = 0;   ///< Stage executions skipped via resume.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_bytes = 0;  ///< Serialized bytes across all writes.
  uint64_t backoff_rounds = 0;    ///< Rounds spent waiting before retries.
  uint64_t handshake_messages = 0;  ///< Resume sync frames (incl. repairs).
  uint64_t handshake_bytes = 0;     ///< Wire bytes of the above.
  /// Crypto operations metered by stage bodies (MeterCryptoOps), total
  /// across all executions.
  uint64_t crypto_ops_total = 0;
  /// Ops of completed stages skipped by resuming (work recovery saved).
  uint64_t crypto_ops_saved = 0;
  /// Ops re-executed for a stage that had already completed in an earlier
  /// attempt. Zero whenever resume_from_checkpoint is true: a checkpointed
  /// ciphertext is never produced twice.
  uint64_t crypto_ops_recomputed = 0;
};

/// \brief Execution context a stage program runs against: one party's
/// durable state plus the RNG streams the program draws from (in the order
/// the RemoteStageSpec lists their labels).
///
/// A stage program is a pure function of (state, rngs): no wire access, no
/// driver locals. That is what makes it location-transparent — the same
/// program run locally, on a psid daemon, or replayed after a crash
/// produces bitwise-identical state and bitwise-identical RNG evolution.
struct StageProgramContext {
  SessionState* state = nullptr;
  std::vector<Rng*> rngs;
  uint64_t crypto_ops = 0;  ///< Program-metered expensive operations.
};

/// \brief A registered, location-transparent stage computation.
using StageProgramFn = std::function<Status(StageProgramContext*)>;

/// \brief Process-wide registry of stage programs, keyed by name
/// ("p6/encrypt"). Protocol drivers register their programs once (idempotent
/// re-registration overwrites); the session layer runs them locally and the
/// psid execution engine (mpc/remote_exec) runs them daemon-side.
class StageProgramRegistry {
 public:
  static StageProgramRegistry& Global();

  void Register(const std::string& name, StageProgramFn fn);
  bool Contains(const std::string& name) const;

  /// \brief Runs the named program, or FailedPrecondition if unregistered.
  [[nodiscard]] Status Run(const std::string& name,
                           StageProgramContext* ctx) const;

  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, StageProgramFn> programs_;
};

/// \brief Placement of one remote-executable stage: which party computes,
/// which registered program, and which of the session's RNG streams the
/// program consumes (by registration label, in draw order).
struct RemoteStageSpec {
  PartyId party = 0;
  std::string program;
  std::vector<std::string> rng_labels;
  /// Per-stage wall-clock deadline of one remote attempt; 0 defers to the
  /// orchestrator's policy default.
  uint64_t deadline_ms = 0;
};

/// \brief A protocol run decomposed into named, checkpointable stages.
///
/// Stage bodies are closures over the driver. They communicate through the
/// Network exactly as before, persist their outputs into the parties'
/// SessionStates, and report expensive public-key operations via
/// MeterCryptoOps. A body must be replayable: reading its inputs from
/// SessionState (not from driver locals of an earlier stage) and drawing
/// randomness only from registered RNGs.
class ProtocolSession {
 public:
  using StageBody = std::function<Status()>;

  /// \brief `parties` are the session members (host first by convention);
  /// the resume handshake runs over every ordered pair of them.
  ProtocolSession(std::string name, Network* network,
                  std::vector<PartyId> parties);

  /// \brief Appends a stage. Stages run in registration order.
  void AddStage(std::string stage_name, StageBody body);

  /// \brief Appends a stage bound to a registered stage program. The base
  /// orchestrator (and the simulator) runs the program in-process against
  /// the party's state — bitwise-identical to a remote run. A
  /// RemoteSessionOrchestrator (mpc/remote_exec) instead dispatches it to
  /// the daemon hosting `spec.party` when the transport supports that.
  void AddRemoteStage(std::string stage_name, RemoteStageSpec spec);

  /// \brief Registers an RNG whose stream the checkpoints snapshot and
  /// recovery rewinds. Every RNG a stage body draws from must be here.
  void RegisterRng(std::string label, Rng* rng);

  /// \brief The RNG registered under `label`, or nullptr.
  Rng* RngByLabel(const std::string& label) const;

  /// \brief Runs `spec`'s program in-process against this session (the
  /// local-fallback body AddRemoteStage installs; also the orchestrator's
  /// degrade-to-local path).
  [[nodiscard]] Status RunStageProgramLocally(const RemoteStageSpec& spec);

  /// \brief The durable store of `party` (created on first use).
  SessionState& PartyState(PartyId party);

  /// \brief Accounts `ops` expensive crypto operations (encryptions,
  /// decryptions, homomorphic additions, key generations) to the currently
  /// running stage.
  void MeterCryptoOps(uint64_t ops);

  const std::string& name() const { return name_; }
  Network* network() const { return network_; }
  const std::vector<PartyId>& parties() const { return parties_; }
  size_t num_stages() const { return stage_names_.size(); }
  const std::string& stage_name(size_t index) const {
    return stage_names_[index];
  }

  /// \brief The placement spec of stage `index`, or nullptr for stages
  /// added with AddStage (wire stages and host-private closures).
  const RemoteStageSpec* remote_spec(size_t index) const;

  const std::vector<std::string>& rng_labels() const { return rng_labels_; }

 private:
  friend class SessionOrchestrator;

  std::string name_;
  Network* network_;
  std::vector<PartyId> parties_;
  std::vector<std::string> stage_names_;
  std::vector<StageBody> stage_bodies_;
  std::map<size_t, RemoteStageSpec> remote_specs_;
  std::vector<std::string> rng_labels_;
  std::vector<Rng*> rngs_;
  std::map<PartyId, SessionState> states_;
  uint64_t current_stage_ops_ = 0;
};

/// \brief Drives a ProtocolSession under a RetryPolicy: run stages in order,
/// checkpoint after each, and on failure restore + handshake + replay.
class SessionOrchestrator {
 public:
  explicit SessionOrchestrator(RetryPolicy policy) : policy_(policy) {}
  virtual ~SessionOrchestrator() = default;

  /// \brief Runs the session to completion. OK only if every stage
  /// succeeded in some attempt; otherwise the last stage error wrapped in a
  /// ProtocolError naming the attempt budget. Mailboxes of all parties are
  /// drained on every outcome, so a failed session never leaks frames into
  /// a successor protocol.
  [[nodiscard]] Status Run(ProtocolSession* session);

  const SessionStats& stats() const { return stats_; }

  /// \brief Observer invoked immediately before each stage executes, with
  /// the stage index and name. The chaos harness uses it to act at exact
  /// stage boundaries (SIGKILL/SIGSTOP the remote executor before stage k),
  /// the way SetRoundObserver pins exact round positions.
  using StageObserver =
      std::function<void(uint32_t stage_index, const std::string& name)>;

  /// \brief Installs (or clears, with nullptr) the stage observer.
  void SetStageObserver(StageObserver observer) {
    stage_observer_ = std::move(observer);
  }

 protected:
  /// One full checkpoint: serialized party states + RNG snapshots + the
  /// per-completed-stage crypto-op ledger. Holds key material and masks —
  /// PSI_SECRET, durable-storage only.
  struct Checkpoint {
    uint32_t stages_completed = 0;
    PSI_SECRET std::vector<std::pair<PartyId, std::vector<uint8_t>>>
        party_blobs;
    PSI_SECRET std::vector<std::vector<uint8_t>> rng_blobs;
    std::vector<uint64_t> stage_ops;  ///< Ops metered per completed stage.
  };

  /// \brief Executes stage `index`. The base implementation runs the
  /// registered body in-process; RemoteSessionOrchestrator (mpc/remote_exec)
  /// overrides it to dispatch remote-placed stages to the daemon hosting
  /// the executing party, falling back to this implementation to degrade.
  [[nodiscard]] virtual Status RunStage(ProtocolSession* session,
                                        size_t index);

  [[nodiscard]] Checkpoint Capture(ProtocolSession& session,
                                   uint32_t stages_completed,
                                   std::vector<uint64_t> stage_ops);
  [[nodiscard]] Status Restore(ProtocolSession& session,
                               const Checkpoint& checkpoint);
  [[nodiscard]] Status ResumeHandshake(ProtocolSession& session,
                                       uint32_t attempt, uint32_t next_stage);

  RetryPolicy policy_;
  SessionStats stats_;
  /// Highest stage index ever completed across attempts; re-running below
  /// it is recomputation (only possible with resume_from_checkpoint off).
  uint32_t completed_high_water_ = 0;
  /// Name of the stage whose failure ended the most recent attempt; gives
  /// the final ProtocolError its "last stage" context.
  std::string last_failed_stage_;
  StageObserver stage_observer_;
};

}  // namespace psi

#endif  // PSI_MPC_SESSION_H_
