// Checkpointed protocol sessions: crash-restart recovery for long MPC runs.
//
// A ProtocolSession runs a protocol driver as a sequence of named stages.
// After every completed stage the SessionOrchestrator captures a checkpoint:
// each party's durable key/value SessionState plus a snapshot of every
// registered RNG stream. When a stage fails (a party crashed mid-round, the
// channel could not be repaired, a peer sent garbage), the orchestrator
// backs off a bounded, seeded number of rounds, restores every party from
// the last checkpoint, performs a resume handshake — re-synchronizing the
// per-channel envelope sequence counters and draining stale mailboxes — and
// replays only the failed stage. Because the RNG snapshots rewind the
// randomness along with the state, a replayed stage re-derives bitwise the
// same masks, shares and ciphertexts, so a recovered run converges to the
// exact fault-free transcript (the chaos harness pins this).
//
// Secrecy: checkpoints hold exactly what the parties already hold — key
// material, masks, shares, RNG streams. They are process-local durable
// storage and NEVER cross the wire; the only session traffic is the resume
// handshake, whose payload is two public counters (attempt, next stage).
// Checkpoint buffers are PSI_SECRET-annotated and psi_lint-audited
// (docs/FAULTS.md has the full secrecy argument).

#ifndef PSI_MPC_SESSION_H_
#define PSI_MPC_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"
#include "net/network.h"

namespace psi {

/// \brief Version tag of the SessionState wire format.
inline constexpr uint32_t kSessionStateVersion = 1;

/// \brief Step tag of the resume-handshake sync frame (ProtocolId::kSession).
inline constexpr uint16_t kSessionStepResumeSync = 1;

/// \brief One party's durable per-session store: named byte blobs written by
/// stage bodies and restored verbatim on recovery.
///
/// Values are opaque to the session layer; stages encode them with the
/// hardened mpc/wire.h codecs. Stage bodies routinely stash wire payloads
/// (ciphertexts, masked shares) here and re-send them on resume, so the
/// store itself is not PSI_SECRET — the taint engine tracks the underlying
/// plaintexts at their source instead. The durable serialized form IS
/// sensitive (it can embed private keys and RNG snapshots): Checkpoint's
/// party_blobs/rng_blobs carry the PSI_SECRET annotation and must only ever
/// travel to durable storage, never to a peer.
class SessionState {
 public:
  /// \brief Inserts or overwrites the blob under `key`.
  void Put(const std::string& key, std::vector<uint8_t> value);

  /// \brief True if a blob is stored under `key`.
  bool Has(const std::string& key) const;

  /// \brief The blob under `key`, or FailedPrecondition if absent (a stage
  /// reading state its predecessors never wrote is a driver bug).
  [[nodiscard]] Result<std::vector<uint8_t>> Get(const std::string& key) const;

  /// \brief Removes all entries.
  void Clear();

  size_t NumEntries() const;

  /// \brief Total stored bytes (keys + values).
  uint64_t ByteSize() const;

  /// \brief Versioned serialization: u32 version, varint entry count, then
  /// (string key, bytes value) pairs in key order.
  [[nodiscard]] std::vector<uint8_t> Serialize() const;

  /// \brief Parses a Serialize() buffer. Returns SerializationError on a
  /// version mismatch, truncation, an oversized count, duplicate keys, or
  /// trailing bytes — a damaged checkpoint is rejected, never half-loaded.
  [[nodiscard]] static Result<SessionState> Deserialize(
      const std::vector<uint8_t>& buf);

 private:
  std::map<std::string, std::vector<uint8_t>> entries_;
};

/// \brief Deterministic retry schedule for a session run.
struct RetryPolicy {
  /// Total tries of the stage sequence (1 = no recovery, fail fast).
  uint32_t max_attempts = 3;
  /// Rounds waited before retry r is base << (r-2), capped below. Each
  /// waited round is a real BeginRound, so crash-restart windows measured
  /// in rounds (net/fault.h) make progress while the session waits.
  uint64_t backoff_rounds_base = 1;
  uint64_t backoff_rounds_cap = 8;
  /// Extra rounds drawn uniformly from [0, jitter] per retry, from a stream
  /// seeded by `seed` (deterministic, independent of protocol randomness).
  uint64_t backoff_jitter_rounds = 1;
  uint64_t seed = 0x5e5510u;
  /// When false, every retry restarts from the initial checkpoint instead
  /// of the latest one — the "no recovery layer" baseline the recovery
  /// bench compares against. Completed crypto work is then redone and shows
  /// up in SessionStats::crypto_ops_recomputed.
  bool resume_from_checkpoint = true;
};

/// \brief What a session run did: attempts, checkpoint volume, handshake
/// traffic, and the crypto-op ledger proving checkpointed work is not
/// redone.
struct SessionStats {
  uint32_t attempts = 0;         ///< Tries of the stage sequence (>= 1).
  uint32_t resumes = 0;          ///< Successful resume handshakes.
  uint64_t stages_run = 0;       ///< Stage executions, including replays.
  uint64_t stages_resumed = 0;   ///< Stage executions skipped via resume.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_bytes = 0;  ///< Serialized bytes across all writes.
  uint64_t backoff_rounds = 0;    ///< Rounds spent waiting before retries.
  uint64_t handshake_messages = 0;  ///< Resume sync frames (incl. repairs).
  uint64_t handshake_bytes = 0;     ///< Wire bytes of the above.
  /// Crypto operations metered by stage bodies (MeterCryptoOps), total
  /// across all executions.
  uint64_t crypto_ops_total = 0;
  /// Ops of completed stages skipped by resuming (work recovery saved).
  uint64_t crypto_ops_saved = 0;
  /// Ops re-executed for a stage that had already completed in an earlier
  /// attempt. Zero whenever resume_from_checkpoint is true: a checkpointed
  /// ciphertext is never produced twice.
  uint64_t crypto_ops_recomputed = 0;
};

/// \brief A protocol run decomposed into named, checkpointable stages.
///
/// Stage bodies are closures over the driver. They communicate through the
/// Network exactly as before, persist their outputs into the parties'
/// SessionStates, and report expensive public-key operations via
/// MeterCryptoOps. A body must be replayable: reading its inputs from
/// SessionState (not from driver locals of an earlier stage) and drawing
/// randomness only from registered RNGs.
class ProtocolSession {
 public:
  using StageBody = std::function<Status()>;

  /// \brief `parties` are the session members (host first by convention);
  /// the resume handshake runs over every ordered pair of them.
  ProtocolSession(std::string name, Network* network,
                  std::vector<PartyId> parties);

  /// \brief Appends a stage. Stages run in registration order.
  void AddStage(std::string stage_name, StageBody body);

  /// \brief Registers an RNG whose stream the checkpoints snapshot and
  /// recovery rewinds. Every RNG a stage body draws from must be here.
  void RegisterRng(std::string label, Rng* rng);

  /// \brief The durable store of `party` (created on first use).
  SessionState& PartyState(PartyId party);

  /// \brief Accounts `ops` expensive crypto operations (encryptions,
  /// decryptions, homomorphic additions, key generations) to the currently
  /// running stage.
  void MeterCryptoOps(uint64_t ops);

  const std::string& name() const { return name_; }
  Network* network() const { return network_; }
  const std::vector<PartyId>& parties() const { return parties_; }
  size_t num_stages() const { return stage_names_.size(); }
  const std::string& stage_name(size_t index) const {
    return stage_names_[index];
  }

 private:
  friend class SessionOrchestrator;

  std::string name_;
  Network* network_;
  std::vector<PartyId> parties_;
  std::vector<std::string> stage_names_;
  std::vector<StageBody> stage_bodies_;
  std::vector<std::string> rng_labels_;
  std::vector<Rng*> rngs_;
  std::map<PartyId, SessionState> states_;
  uint64_t current_stage_ops_ = 0;
};

/// \brief Drives a ProtocolSession under a RetryPolicy: run stages in order,
/// checkpoint after each, and on failure restore + handshake + replay.
class SessionOrchestrator {
 public:
  explicit SessionOrchestrator(RetryPolicy policy) : policy_(policy) {}

  /// \brief Runs the session to completion. OK only if every stage
  /// succeeded in some attempt; otherwise the last stage error wrapped in a
  /// ProtocolError naming the attempt budget. Mailboxes of all parties are
  /// drained on every outcome, so a failed session never leaks frames into
  /// a successor protocol.
  [[nodiscard]] Status Run(ProtocolSession* session);

  const SessionStats& stats() const { return stats_; }

 private:
  /// One full checkpoint: serialized party states + RNG snapshots + the
  /// per-completed-stage crypto-op ledger. Holds key material and masks —
  /// PSI_SECRET, durable-storage only.
  struct Checkpoint {
    uint32_t stages_completed = 0;
    PSI_SECRET std::vector<std::pair<PartyId, std::vector<uint8_t>>>
        party_blobs;
    PSI_SECRET std::vector<std::vector<uint8_t>> rng_blobs;
    std::vector<uint64_t> stage_ops;  ///< Ops metered per completed stage.
  };

  [[nodiscard]] Checkpoint Capture(ProtocolSession& session,
                                   uint32_t stages_completed,
                                   std::vector<uint64_t> stage_ops);
  [[nodiscard]] Status Restore(ProtocolSession& session,
                               const Checkpoint& checkpoint);
  [[nodiscard]] Status ResumeHandshake(ProtocolSession& session,
                                       uint32_t attempt, uint32_t next_stage);

  RetryPolicy policy_;
  SessionStats stats_;
  /// Highest stage index ever completed across attempts; re-running below
  /// it is recomputation (only possible with resume_from_checkpoint off).
  uint32_t completed_high_water_ = 0;
};

}  // namespace psi

#endif  // PSI_MPC_SESSION_H_
