#include "mpc/joint_random.h"

#include <cmath>

#include "common/serialize.h"

namespace psi {

namespace {

// The exchange body; the public entry drains mailboxes on error.
[[nodiscard]] Result<std::vector<double>> JointUniformBatchImpl(
    Network* network, PartyId a, PartyId b, size_t count, Rng* rng_a,
    Rng* rng_b, const std::string& label) {
  network->BeginRound(label);

  auto draw = [count](Rng* rng) {
    std::vector<double> v(count);
    for (auto& x : v) x = rng->UniformRealOpen();
    return v;
  };
  std::vector<double> contrib_a = draw(rng_a);
  std::vector<double> contrib_b = draw(rng_b);

  auto pack = [](const std::vector<double>& v) {
    BinaryWriter w;
    for (double x : v) w.WriteDouble(x);
    return w.TakeBuffer();
  };
  constexpr uint16_t kStepExchange = 1;
  PSI_RETURN_NOT_OK(network->SendFramed(a, b, ProtocolId::kJointRandom,
                                        kStepExchange, pack(contrib_a)));
  PSI_RETURN_NOT_OK(network->SendFramed(b, a, ProtocolId::kJointRandom,
                                        kStepExchange, pack(contrib_b)));

  // Each party combines its own draw with the contribution it received.
  PSI_ASSIGN_OR_RETURN(auto at_b,
                       network->RecvValidated(b, a, ProtocolId::kJointRandom,
                                              kStepExchange));
  PSI_ASSIGN_OR_RETURN(auto at_a,
                       network->RecvValidated(a, b, ProtocolId::kJointRandom,
                                              kStepExchange));
  auto unpack = [count](const std::vector<uint8_t>& buf,
                        std::vector<double>* out) {
    if (buf.size() != count * 8) {
      return Status::ProtocolError("joint-random contribution size mismatch");
    }
    BinaryReader r(buf);
    out->resize(count);
    for (auto& x : *out) PSI_RETURN_NOT_OK(r.ReadDouble(&x));
    return Status::OK();
  };
  std::vector<double> recv_at_b, recv_at_a;
  PSI_RETURN_NOT_OK(unpack(at_b, &recv_at_b));
  PSI_RETURN_NOT_OK(unpack(at_a, &recv_at_a));

  std::vector<double> joint(count);
  for (size_t i = 0; i < count; ++i) {
    // Party a computes from (contrib_a, recv_at_a) and party b from
    // (recv_at_b, contrib_b); the validated transport makes them agree.
    double sum = contrib_a[i] + recv_at_a[i];
    double sum_b = recv_at_b[i] + contrib_b[i];
    if (sum != sum_b) {
      return Status::ProtocolError("joint-random contributions diverged");
    }
    joint[i] = sum - std::floor(sum);  // Fractional part: still uniform.
    if (joint[i] <= 0.0 || joint[i] >= 1.0) joint[i] = 0.5;  // FP edge guard.
  }
  return joint;
}

}  // namespace

Result<std::vector<double>> JointUniformBatch(Network* network, PartyId a,
                                              PartyId b, size_t count,
                                              Rng* rng_a, Rng* rng_b,
                                              const std::string& label) {
  return DrainOnError(
      network, JointUniformBatchImpl(network, a, b, count, rng_a, rng_b, label));
}

std::vector<double> ToZDistribution(const std::vector<double>& uniforms) {
  std::vector<double> out(uniforms.size());
  for (size_t i = 0; i < uniforms.size(); ++i) {
    out[i] = 1.0 / (1.0 - uniforms[i]);
  }
  return out;
}

Result<std::vector<double>> ToUniformBelow(const std::vector<double>& uniforms,
                                           const std::vector<double>& bounds) {
  if (uniforms.size() != bounds.size()) {
    return Status::InvalidArgument("uniforms/bounds size mismatch");
  }
  std::vector<double> out(uniforms.size());
  for (size_t i = 0; i < uniforms.size(); ++i) {
    out[i] = uniforms[i] * bounds[i];
  }
  return out;
}

}  // namespace psi
