#include "mpc/joint_random.h"

#include <cmath>

#include "common/serialize.h"

namespace psi {

Result<std::vector<double>> JointUniformBatch(Network* network, PartyId a,
                                              PartyId b, size_t count,
                                              Rng* rng_a, Rng* rng_b,
                                              const std::string& label) {
  network->BeginRound(label);

  auto draw = [count](Rng* rng) {
    std::vector<double> v(count);
    for (auto& x : v) x = rng->UniformRealOpen();
    return v;
  };
  std::vector<double> contrib_a = draw(rng_a);
  std::vector<double> contrib_b = draw(rng_b);

  auto pack = [](const std::vector<double>& v) {
    BinaryWriter w;
    for (double x : v) w.WriteDouble(x);
    return w.TakeBuffer();
  };
  PSI_RETURN_NOT_OK(network->Send(a, b, pack(contrib_a)));
  PSI_RETURN_NOT_OK(network->Send(b, a, pack(contrib_b)));

  // Both parties now hold both contributions; each computes the same values.
  // (We deliver both messages to keep mailboxes clean.)
  PSI_ASSIGN_OR_RETURN(auto at_b, network->Recv(b, a));
  PSI_ASSIGN_OR_RETURN(auto at_a, network->Recv(a, b));
  (void)at_b;
  (void)at_a;

  std::vector<double> joint(count);
  for (size_t i = 0; i < count; ++i) {
    double sum = contrib_a[i] + contrib_b[i];
    joint[i] = sum - std::floor(sum);  // Fractional part: still uniform.
    if (joint[i] <= 0.0 || joint[i] >= 1.0) joint[i] = 0.5;  // FP edge guard.
  }
  return joint;
}

std::vector<double> ToZDistribution(const std::vector<double>& uniforms) {
  std::vector<double> out(uniforms.size());
  for (size_t i = 0; i < uniforms.size(); ++i) {
    out[i] = 1.0 / (1.0 - uniforms[i]);
  }
  return out;
}

Result<std::vector<double>> ToUniformBelow(const std::vector<double>& uniforms,
                                           const std::vector<double>& bounds) {
  if (uniforms.size() != bounds.size()) {
    return Status::InvalidArgument("uniforms/bounds size mismatch");
  }
  std::vector<double> out(uniforms.size());
  for (size_t i = 0; i < uniforms.size(); ++i) {
    out[i] = uniforms[i] * bounds[i];
  }
  return out;
}

}  // namespace psi
