#include "mpc/non_exclusive.h"

#include <algorithm>

namespace psi {

void MergeAggregates(const AggregatedClassCounters& src,
                     AggregatedClassCounters* dst) {
  if (dst->a.size() < src.a.size()) dst->a.resize(src.a.size(), 0);
  for (size_t i = 0; i < src.a.size(); ++i) dst->a[i] += src.a[i];
  for (const auto& [key, by_delay] : src.c_by_delay) {
    auto [it, inserted] = dst->c_by_delay.try_emplace(
        key, std::vector<uint64_t>(by_delay.size(), 0));
    if (it->second.size() < by_delay.size()) {
      it->second.resize(by_delay.size(), 0);
    }
    for (size_t l = 0; l < by_delay.size(); ++l) {
      it->second[l] += by_delay[l];
    }
  }
}

NonExclusivePipeline::NonExclusivePipeline(Network* network, PartyId host,
                                           std::vector<PartyId> providers,
                                           NonExclusiveConfig config)
    : network_(network),
      host_(host),
      providers_(std::move(providers)),
      config_(config) {
  config_.protocol5.h = config_.protocol4.h;  // One window for both stages.
}

PartyId NonExclusivePipeline::PickAggregator(
    const std::vector<size_t>& group) const {
  for (size_t k = 0; k < providers_.size(); ++k) {
    if (std::find(group.begin(), group.end(), k) == group.end()) {
      return providers_[k];
    }
  }
  return host_;  // Every provider is in the group: the host assists.
}

Result<LinkInfluence> NonExclusivePipeline::Run(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs,
    const ActionClassConfig& class_config, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng,
    Rng* class_secret_rng) {
  return DrainOnError(
      network_, RunImpl(host_graph, num_actions_public, provider_logs,
                        class_config, host_rng, provider_rngs, pair_secret_rng,
                        class_secret_rng));
}

Result<LinkInfluence> NonExclusivePipeline::RunImpl(
    const SocialGraph& host_graph, uint64_t num_actions_public,
    const std::vector<ActionLog>& provider_logs,
    const ActionClassConfig& class_config, Rng* host_rng,
    const std::vector<Rng*>& provider_rngs, Rng* pair_secret_rng,
    Rng* class_secret_rng) {
  const size_t m = providers_.size();
  PSI_RETURN_NOT_OK(class_config.Validate(m));
  if (provider_logs.size() != m) {
    return Status::InvalidArgument("one log per provider");
  }
  const size_t n = host_graph.num_nodes();

  // Residual logs start as copies; Protocol 5 strips class records from the
  // members of each class group.
  std::vector<ActionLog> residual = provider_logs;
  std::vector<AggregatedClassCounters> extras(m);
  for (auto& e : extras) e.a.assign(n, 0);

  for (uint32_t q = 0; q < class_config.num_classes(); ++q) {
    const auto& group = class_config.provider_groups[q];
    if (group.size() < 2) {
      // A single-provider class is effectively exclusive: its records can
      // stay in the residual log untouched.
      continue;
    }
    std::vector<PartyId> group_parties;
    std::vector<ActionLog> class_logs;
    for (size_t k : group) {
      auto [in_class, remainder] =
          SplitOutClass(residual[k], class_config.class_of_action, q);
      class_logs.push_back(std::move(in_class));
      residual[k] = std::move(remainder);
      group_parties.push_back(providers_[k]);
    }
    Protocol5Config p5 = config_.protocol5;
    if (p5.time_frame_t == 0) {
      // Public frame: the largest timestamp across all logs + 1 (in a real
      // deployment T is the agreed campaign horizon).
      uint64_t t = 0;
      for (const auto& log : provider_logs) t = std::max(t, log.MaxTime());
      p5.time_frame_t = t + 1;
    }
    ClassAggregationProtocol p5_run(network_, group_parties,
                                    PickAggregator(group), p5);
    Rng group_rng = class_secret_rng->Fork("class-" + std::to_string(q));
    PSI_ASSIGN_OR_RETURN(
        AggregatedClassCounters counters,
        p5_run.Run(class_logs, n, &group_rng,
                   "P5[class " + std::to_string(q) + "]."));
    // The representative (first group member) absorbs the aggregates.
    MergeAggregates(counters, &extras[group[0]]);
  }

  // Protocol 4 over residual logs + aggregates.
  LinkInfluenceProtocol p4(network_, host_, providers_, config_.protocol4);
  std::vector<const AggregatedClassCounters*> extra_ptrs(m);
  for (size_t k = 0; k < m; ++k) extra_ptrs[k] = &extras[k];
  return p4.Run(host_graph, num_actions_public, residual, host_rng,
                provider_rngs, pair_secret_rng, extra_ptrs);
}

}  // namespace psi
