#include "net/socket_util.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/serialize.h"

namespace psi {

const char* TransportMsgKindToString(TransportMsgKind kind) {
  switch (kind) {
    case TransportMsgKind::kChallenge: return "challenge";
    case TransportMsgKind::kHello: return "hello";
    case TransportMsgKind::kHelloAck: return "hello-ack";
    case TransportMsgKind::kData: return "data";
    case TransportMsgKind::kHeartbeat: return "heartbeat";
    case TransportMsgKind::kHeartbeatAck: return "heartbeat-ack";
    case TransportMsgKind::kGoodbye: return "goodbye";
    case TransportMsgKind::kExec: return "exec";
    case TransportMsgKind::kExecResult: return "exec-result";
  }
  return "unknown";
}

std::vector<uint8_t> PackTransportMsg(TransportMsgKind kind, uint8_t flags,
                                      const std::vector<uint8_t>& body) {
  BinaryWriter w;
  w.Reserve(kTransportHeaderBytes + body.size());
  w.WriteU32(kTransportMagic);
  w.WriteU8(static_cast<uint8_t>(kind));
  w.WriteU8(flags);
  w.WriteU16(0);  // Reserved.
  w.WriteU32(static_cast<uint32_t>(body.size()));
  w.WriteRaw(body.data(), body.size());
  return w.TakeBuffer();
}

void TransportParser::Append(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void TransportParser::Compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

Result<bool> TransportParser::Next(TransportMsg* out) {
  if (buffered() < kTransportHeaderBytes) return false;
  BinaryReader header(buf_.data() + pos_, kTransportHeaderBytes);
  uint32_t magic = 0;
  uint8_t kind = 0;
  uint8_t flags = 0;
  uint16_t reserved = 0;
  uint32_t body_len = 0;
  PSI_RETURN_NOT_OK(header.ReadU32(&magic));
  PSI_RETURN_NOT_OK(header.ReadU8(&kind));
  PSI_RETURN_NOT_OK(header.ReadU8(&flags));
  PSI_RETURN_NOT_OK(header.ReadU16(&reserved));
  PSI_RETURN_NOT_OK(header.ReadU32(&body_len));
  if (magic != kTransportMagic) {
    return Status::ProtocolError(
        "transport stream lost framing (bad magic 0x" + [](uint32_t v) {
          char hex[16];
          std::snprintf(hex, sizeof(hex), "%08x", v);
          return std::string(hex);
        }(magic) + ")");
  }
  if (kind < static_cast<uint8_t>(TransportMsgKind::kChallenge) ||
      kind > static_cast<uint8_t>(TransportMsgKind::kExecResult)) {
    return Status::ProtocolError("transport message of unknown kind " +
                                 std::to_string(kind));
  }
  if (body_len > kMaxTransportBodyBytes) {
    return Status::ProtocolError("transport body of " +
                                 std::to_string(body_len) +
                                 " bytes exceeds the sanity bound");
  }
  if (buffered() < kTransportHeaderBytes + body_len) return false;
  out->kind = static_cast<TransportMsgKind>(kind);
  out->flags = flags;
  const uint8_t* body = buf_.data() + pos_ + kTransportHeaderBytes;
  out->body.assign(body, body + body_len);
  pos_ += kTransportHeaderBytes + body_len;
  Compact();
  return true;
}

uint64_t MonotonicMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status SetNonBlocking(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  if (fl < 0 || fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK): " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Status::Internal("setsockopt(TCP_NODELAY): " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status FlushSendQueue(int fd, std::deque<std::vector<uint8_t>>* queue) {
  while (!queue->empty()) {
    std::vector<uint8_t>& front = queue->front();
    const ssize_t n =
        send(fd, front.data(), front.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return Status::OK();  // Kernel buffer full; try again next pump.
      }
      return Status::ProtocolError("socket send failed: " +
                                   std::string(std::strerror(errno)));
    }
    if (static_cast<size_t>(n) == front.size()) {
      queue->pop_front();
    } else {
      front.erase(front.begin(), front.begin() + n);
      return Status::OK();  // Partial write; the rest waits its turn.
    }
  }
  return Status::OK();
}

Status ReadAvailable(int fd, TransportParser* parser, bool* closed,
                     size_t* bytes_read) {
  *closed = false;
  uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      parser->Append(chunk, static_cast<size_t>(n));
      if (bytes_read != nullptr) *bytes_read += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      *closed = true;  // Orderly shutdown by the peer.
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();
    }
    return Status::ProtocolError("socket recv failed: " +
                                 std::string(std::strerror(errno)));
  }
}

}  // namespace psi
