// Deterministic fault injection over the in-process simulator.
//
// FaultyNetwork decorates the lossless Network simulator with the shared
// FaultInjector pipeline (net/fault_injector.h): driven by a seeded RNG so
// every schedule is reproducible, it drops, duplicates, reorders, corrupts
// (single bit flip), truncates or delays frames matched by a FaultPlan,
// and can silence a party entirely after a chosen round (crash fault). The
// injector also keeps pristine copies of every transmitted frame, which is
// what serves Network::RecvValidated's bounded retransmission requests.
// The socket transport applies the *same* injector to frames crossing real
// sockets, so one chaos plan means one fault schedule on either backend.
//
// The chaos invariant the test suite enforces on top of this layer
// (docs/FAULTS.md): a protocol driver run under ANY fault schedule either
// produces exactly the fault-free result or terminates promptly with a
// clean non-OK Status — never a wrong answer, a crash, or a hang.

#ifndef PSI_NET_FAULT_H_
#define PSI_NET_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "net/network.h"

namespace psi {

/// \brief Network with deterministic, plan-driven fault injection.
class FaultyNetwork : public Network {
 public:
  explicit FaultyNetwork(FaultPlan plan);

  /// \brief Releases delayed frames into their mailboxes, then opens the
  /// round as usual.
  void BeginRound(std::string label) override;

  /// \brief Serves RecvValidated's retransmission requests from the pristine
  /// frame store, re-running the fault pipeline on the retransmitted copy
  /// (a retransmission travels the same unreliable wire). Refused when the
  /// sender has crashed or the frame was never sent.
  [[nodiscard]] Result<std::vector<uint8_t>> RequestRetransmit(PartyId to, PartyId from,
                                                 uint64_t seq) override;

  const FaultStats& fault_stats() const { return injector_.stats(); }

 protected:
  [[nodiscard]] Status Transmit(PartyId from, PartyId to,
                  std::vector<uint8_t> frame) override;

 private:
  FaultInjector injector_;
};

}  // namespace psi

#endif  // PSI_NET_FAULT_H_
