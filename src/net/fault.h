// Deterministic fault injection for the multiparty transport.
//
// FaultyNetwork wraps the lossless Network simulator and — driven by a
// seeded RNG so every schedule is reproducible — drops, duplicates,
// reorders, corrupts (single bit flip), truncates or delays frames matched
// by a FaultPlan, and can silence a party entirely after a chosen round
// (crash fault). It also keeps pristine copies of every transmitted frame,
// which is what serves Network::RecvValidated's bounded retransmission
// requests.
//
// The chaos invariant the test suite enforces on top of this layer
// (docs/FAULTS.md): a protocol driver run under ANY fault schedule either
// produces exactly the fault-free result or terminates promptly with a
// clean non-OK Status — never a wrong answer, a crash, or a hang.

#ifndef PSI_NET_FAULT_H_
#define PSI_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/network.h"

namespace psi {

/// \brief Wildcard PartyId accepted by FaultRule matchers.
inline constexpr PartyId kAnyParty = 0xFFFFFFFFu;

/// \brief What a firing fault rule does to a frame in flight.
enum class FaultKind : uint8_t {
  kDrop = 0,      ///< Frame vanishes.
  kDuplicate,     ///< Frame is delivered twice.
  kReorder,       ///< Frame jumps ahead of the channel queue.
  kCorrupt,       ///< One random bit of the frame is flipped.
  kTruncate,      ///< Frame is cut to a random proper prefix.
  kDelay,         ///< Frame is held until the next BeginRound.
};

const char* FaultKindToString(FaultKind kind);

/// \brief One fault matcher: which messages it applies to and how often.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  PartyId from = kAnyParty;   ///< Sender filter (kAnyParty matches all).
  PartyId to = kAnyParty;     ///< Receiver filter.
  uint64_t round_min = 0;     ///< First round index the rule is active in.
  uint64_t round_max = UINT64_MAX;  ///< Last active round index.
  double probability = 1.0;   ///< Per-matching-message firing probability.
  uint32_t max_triggers = UINT32_MAX;  ///< Firing budget across the run.
};

/// \brief A party that stops participating after a given round: all its
/// transmissions (including retransmissions) are lost while it is down.
///
/// With the default `restart_round` the crash is permanent. A finite
/// `restart_round` models crash-*restart*: the party is down for round
/// indices in (after_round, restart_round) and rejoins from `restart_round`
/// on — having lost its volatile state, which is exactly the failure a
/// checkpointed ProtocolSession (mpc/session.h) recovers from. Restarting
/// parties keep their retransmission store (it models durable storage, like
/// the session checkpoint).
struct CrashSpec {
  PartyId party = kAnyParty;
  uint64_t after_round = 0;  ///< Down in every round index > after_round...
  uint64_t restart_round = UINT64_MAX;  ///< ...until this round (exclusive).
};

/// \brief A complete, seeded fault schedule.
struct FaultPlan {
  uint64_t seed = 0;  ///< Seeds the coin flips and mutation choices.
  std::vector<FaultRule> rules;
  std::optional<CrashSpec> crash;

  /// \brief The all-zero plan: FaultyNetwork behaves exactly like Network.
  static FaultPlan None() { return FaultPlan{}; }

  /// \brief A randomized chaos schedule: 1-3 rules with random kinds,
  /// probabilities and budgets, plus an occasional crash of one of
  /// `num_parties` parties. Fully determined by `seed`.
  static FaultPlan RandomPlan(uint64_t seed, size_t num_parties);

  /// \brief A randomized crash-restart schedule for session recovery tests:
  /// always crashes one non-host party after a random round and restarts it
  /// a few rounds later, plus 0-2 light fault rules. Fully determined by
  /// `seed`. Kept separate from RandomPlan so its draw order (and therefore
  /// every existing chaos transcript) is unchanged.
  static FaultPlan RandomRestartPlan(uint64_t seed, size_t num_parties);
};

/// \brief Counters of what the fault layer actually did.
struct FaultStats {
  uint64_t transmitted = 0;    ///< Frames that entered the fault pipeline.
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
  uint64_t delayed = 0;
  uint64_t crash_dropped = 0;  ///< Sends silenced by a crash.
  uint64_t retransmits_served = 0;
  uint64_t retransmits_refused = 0;

  uint64_t injected() const {
    return dropped + duplicated + reordered + corrupted + truncated + delayed;
  }
};

/// \brief Network with deterministic, plan-driven fault injection.
class FaultyNetwork : public Network {
 public:
  explicit FaultyNetwork(FaultPlan plan);

  /// \brief Releases delayed frames into their mailboxes, then opens the
  /// round as usual.
  void BeginRound(std::string label) override;

  /// \brief Serves RecvValidated's retransmission requests from the pristine
  /// frame store, re-running the fault pipeline on the retransmitted copy
  /// (a retransmission travels the same unreliable wire). Refused when the
  /// sender has crashed or the frame was never sent.
  [[nodiscard]] Result<std::vector<uint8_t>> RequestRetransmit(PartyId to, PartyId from,
                                                 uint64_t seq) override;

  const FaultStats& fault_stats() const { return stats_; }

 protected:
  [[nodiscard]] Status Transmit(PartyId from, PartyId to,
                  std::vector<uint8_t> frame) override;

 private:
  bool Crashed(PartyId party) const;
  /// Index into plan_.rules of the first rule that matches and fires, or -1.
  int Decide(PartyId from, PartyId to);
  std::vector<uint8_t> Mutate(FaultKind kind, std::vector<uint8_t> frame);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  std::vector<uint32_t> triggers_used_;  // Parallel to plan_.rules.
  // Pristine copies of every frame, per channel, for retransmission.
  std::map<ChannelKey, std::vector<std::vector<uint8_t>>> sent_log_;
  // Frames held by kDelay until the next BeginRound.
  std::vector<std::pair<ChannelKey, std::vector<uint8_t>>> delayed_;
};

}  // namespace psi

#endif  // PSI_NET_FAULT_H_
