#include "net/envelope.h"

#include "common/serialize.h"

namespace psi {

const char* ProtocolIdToString(ProtocolId id) {
  switch (id) {
    case ProtocolId::kRaw: return "Raw";
    case ProtocolId::kSecureSum: return "SecureSum";
    case ProtocolId::kSecureDivision: return "SecureDivision";
    case ProtocolId::kLinkInfluence: return "LinkInfluence";
    case ProtocolId::kClassAggregation: return "ClassAggregation";
    case ProtocolId::kPropagationGraph: return "PropagationGraph";
    case ProtocolId::kHomomorphicSum: return "HomomorphicSum";
    case ProtocolId::kJointRandom: return "JointRandom";
    case ProtocolId::kSession: return "Session";
    case ProtocolId::kExec: return "Exec";
  }
  return "Unknown";
}

std::vector<uint8_t> SealEnvelope(ProtocolId protocol_id, uint16_t step,
                                  uint32_t sender, uint64_t seq,
                                  const std::vector<uint8_t>& payload) {
  BinaryWriter w;
  w.Reserve(payload.size() + kEnvelopeOverheadBytes);
  w.WriteU32(kEnvelopeMagic);
  w.WriteU8(kEnvelopeVersion);
  w.WriteU16(static_cast<uint16_t>(protocol_id));
  w.WriteU16(step);
  w.WriteU32(sender);
  w.WriteU64(seq);
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteRaw(payload.data(), payload.size());
  uint32_t crc = Crc32(w.buffer());
  w.WriteU32(crc);
  return w.TakeBuffer();
}

Result<Envelope> OpenEnvelope(const std::vector<uint8_t>& frame) {
  if (frame.size() < kEnvelopeOverheadBytes) {
    return Status::SerializationError("envelope: frame shorter than header");
  }
  BinaryReader r(frame);
  uint32_t magic;
  uint8_t version;
  uint16_t protocol_id, step;
  uint32_t sender, payload_len;
  uint64_t seq;
  PSI_RETURN_NOT_OK(r.ReadU32(&magic));
  if (magic != kEnvelopeMagic) {
    return Status::SerializationError("envelope: bad magic");
  }
  PSI_RETURN_NOT_OK(r.ReadU8(&version));
  if (version != kEnvelopeVersion) {
    return Status::SerializationError("envelope: unsupported version");
  }
  PSI_RETURN_NOT_OK(r.ReadU16(&protocol_id));
  PSI_RETURN_NOT_OK(r.ReadU16(&step));
  PSI_RETURN_NOT_OK(r.ReadU32(&sender));
  PSI_RETURN_NOT_OK(r.ReadU64(&seq));
  PSI_RETURN_NOT_OK(r.ReadU32(&payload_len));
  if (static_cast<uint64_t>(payload_len) + kEnvelopeOverheadBytes !=
      frame.size()) {
    return Status::SerializationError(
        "envelope: payload length does not match frame size");
  }
  uint32_t declared_crc;
  std::memcpy(&declared_crc, frame.data() + frame.size() - 4, 4);
  if (Crc32(frame.data(), frame.size() - 4) != declared_crc) {
    return Status::SerializationError("envelope: checksum mismatch");
  }
  Envelope env;
  env.protocol_id = static_cast<ProtocolId>(protocol_id);
  env.step = step;
  env.sender = sender;
  env.seq = seq;
  env.payload.assign(frame.begin() + 25, frame.end() - 4);
  return env;
}

Result<uint64_t> PeekEnvelopeSeq(const std::vector<uint8_t>& frame) {
  if (frame.size() < kEnvelopeOverheadBytes) {
    return Status::SerializationError("envelope: frame shorter than header");
  }
  uint32_t magic;
  std::memcpy(&magic, frame.data(), 4);
  if (magic != kEnvelopeMagic) {
    return Status::SerializationError("envelope: bad magic");
  }
  uint64_t seq;
  std::memcpy(&seq, frame.data() + 13, 8);
  return seq;
}

}  // namespace psi
