#include "net/fault.h"

#include <utility>

namespace psi {

FaultyNetwork::FaultyNetwork(FaultPlan plan) : injector_(std::move(plan)) {}

Status FaultyNetwork::Transmit(PartyId from, PartyId to,
                               std::vector<uint8_t> frame) {
  FaultInjector::Verdict verdict =
      injector_.OnTransmit(RoundIndex(), from, to, std::move(frame));
  switch (verdict.action) {
    case FaultInjector::Action::kSwallow:
      return Status::OK();
    case FaultInjector::Action::kDeliverTwice:
      Deliver(from, to, verdict.frame);
      Deliver(from, to, std::move(verdict.frame));
      return Status::OK();
    case FaultInjector::Action::kDeliverFront:
      Deliver(from, to, std::move(verdict.frame), /*front=*/true);
      return Status::OK();
    case FaultInjector::Action::kDeliver:
      return Network::Transmit(from, to, std::move(verdict.frame));
  }
  return Status::OK();
}

void FaultyNetwork::BeginRound(std::string label) {
  // Delayed frames surface at the next round boundary, before any of the
  // round's own traffic.
  for (auto& [key, frame] : injector_.TakeDelayed()) {
    Deliver(key.first, key.second, std::move(frame));
  }
  Network::BeginRound(std::move(label));
}

Result<std::vector<uint8_t>> FaultyNetwork::RequestRetransmit(PartyId to,
                                                              PartyId from,
                                                              uint64_t seq) {
  FaultInjector::Retransmission served = injector_.OnRetransmit(
      RoundIndex(), to, from, seq, DescribeChannel(from, to),
      party_name(from));
  if (served.wire_bytes > 0) {
    MeterSend(from, served.wire_bytes, served.payload_bytes);
  }
  return std::move(served.result);
}

}  // namespace psi
