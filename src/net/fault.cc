#include "net/fault.h"

#include <algorithm>
#include <utility>

namespace psi {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

FaultPlan FaultPlan::RandomPlan(uint64_t seed, size_t num_parties) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  FaultPlan plan;
  plan.seed = seed;
  const size_t num_rules = 1 + rng.UniformU64(3);
  for (size_t i = 0; i < num_rules; ++i) {
    FaultRule rule;
    rule.kind = static_cast<FaultKind>(rng.UniformU64(6));
    // Mostly wildcard channels; occasionally pin one endpoint.
    if (num_parties > 0 && rng.Bernoulli(0.3)) {
      rule.from = static_cast<PartyId>(rng.UniformU64(num_parties));
    }
    if (num_parties > 0 && rng.Bernoulli(0.3)) {
      rule.to = static_cast<PartyId>(rng.UniformU64(num_parties));
    }
    rule.probability = rng.UniformReal(0.05, 0.35);
    rule.max_triggers = static_cast<uint32_t>(1 + rng.UniformU64(4));
    plan.rules.push_back(rule);
  }
  if (num_parties > 1 && rng.Bernoulli(0.15)) {
    CrashSpec crash;
    // Never crash party 0: by convention that is the host H, without which
    // no protocol can even start a round.
    crash.party = static_cast<PartyId>(1 + rng.UniformU64(num_parties - 1));
    crash.after_round = 1 + rng.UniformU64(6);
    plan.crash = crash;
  }
  return plan;
}

FaultPlan FaultPlan::RandomRestartPlan(uint64_t seed, size_t num_parties) {
  Rng rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
  FaultPlan plan;
  plan.seed = seed;
  // 0-2 light rules so recovery is exercised both alone and under noise.
  const size_t num_rules = rng.UniformU64(3);
  for (size_t i = 0; i < num_rules; ++i) {
    FaultRule rule;
    rule.kind = static_cast<FaultKind>(rng.UniformU64(6));
    rule.probability = rng.UniformReal(0.05, 0.2);
    rule.max_triggers = static_cast<uint32_t>(1 + rng.UniformU64(3));
    plan.rules.push_back(rule);
  }
  CrashSpec crash;
  // Never crash party 0 (the host H, without which no round can start).
  crash.party = num_parties > 1
                    ? static_cast<PartyId>(1 + rng.UniformU64(num_parties - 1))
                    : kAnyParty;
  crash.after_round = rng.UniformU64(8);
  crash.restart_round = crash.after_round + 2 + rng.UniformU64(6);
  plan.crash = crash;
  return plan;
}

FaultyNetwork::FaultyNetwork(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      triggers_used_(plan_.rules.size(), 0) {}

bool FaultyNetwork::Crashed(PartyId party) const {
  if (!plan_.crash.has_value() || plan_.crash->party != party) return false;
  const uint64_t round = RoundIndex();
  return round > plan_.crash->after_round &&
         round < plan_.crash->restart_round;
}

int FaultyNetwork::Decide(PartyId from, PartyId to) {
  const uint64_t round = RoundIndex();
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.from != kAnyParty && rule.from != from) continue;
    if (rule.to != kAnyParty && rule.to != to) continue;
    if (round < rule.round_min || round > rule.round_max) continue;
    if (triggers_used_[i] >= rule.max_triggers) continue;
    // Draw the coin only for matching rules so the decision stream is a
    // deterministic function of the message sequence.
    if (!rng_.Bernoulli(rule.probability)) continue;
    ++triggers_used_[i];
    return static_cast<int>(i);
  }
  return -1;
}

std::vector<uint8_t> FaultyNetwork::Mutate(FaultKind kind,
                                           std::vector<uint8_t> frame) {
  switch (kind) {
    case FaultKind::kCorrupt: {
      if (!frame.empty()) {
        const uint64_t bit = rng_.UniformU64(frame.size() * 8);
        frame[bit / 8] = static_cast<uint8_t>(frame[bit / 8] ^
                                              (1u << (bit % 8)));
      }
      return frame;
    }
    case FaultKind::kTruncate: {
      if (!frame.empty()) {
        frame.resize(rng_.UniformU64(frame.size()));
      }
      return frame;
    }
    default:
      return frame;
  }
}

Status FaultyNetwork::Transmit(PartyId from, PartyId to,
                               std::vector<uint8_t> frame) {
  if (Crashed(from)) {
    ++stats_.crash_dropped;
    return Status::OK();  // Silently lost: the receiver sees only silence.
  }
  ++stats_.transmitted;
  sent_log_[{from, to}].push_back(frame);  // Pristine copy, pre-fault.
  const int rule = Decide(from, to);
  if (rule < 0) {
    return Network::Transmit(from, to, std::move(frame));
  }
  switch (plan_.rules[static_cast<size_t>(rule)].kind) {
    case FaultKind::kDrop:
      ++stats_.dropped;
      return Status::OK();
    case FaultKind::kDuplicate:
      ++stats_.duplicated;
      Deliver(from, to, frame);
      Deliver(from, to, std::move(frame));
      return Status::OK();
    case FaultKind::kReorder:
      ++stats_.reordered;
      Deliver(from, to, std::move(frame), /*front=*/true);
      return Status::OK();
    case FaultKind::kCorrupt:
      ++stats_.corrupted;
      Deliver(from, to, Mutate(FaultKind::kCorrupt, std::move(frame)));
      return Status::OK();
    case FaultKind::kTruncate:
      ++stats_.truncated;
      Deliver(from, to, Mutate(FaultKind::kTruncate, std::move(frame)));
      return Status::OK();
    case FaultKind::kDelay:
      ++stats_.delayed;
      delayed_.emplace_back(ChannelKey{from, to}, std::move(frame));
      return Status::OK();
  }
  return Status::OK();
}

void FaultyNetwork::BeginRound(std::string label) {
  // Delayed frames surface at the next round boundary, before any of the
  // round's own traffic.
  std::vector<std::pair<ChannelKey, std::vector<uint8_t>>> due;
  due.swap(delayed_);
  for (auto& [key, frame] : due) {
    Deliver(key.first, key.second, std::move(frame));
  }
  Network::BeginRound(std::move(label));
}

Result<std::vector<uint8_t>> FaultyNetwork::RequestRetransmit(PartyId to,
                                                              PartyId from,
                                                              uint64_t seq) {
  if (Crashed(from)) {
    ++stats_.retransmits_refused;
    return Status::FailedPrecondition(
        "retransmit refused: " + party_name(from) + " crashed after round " +
        std::to_string(plan_.crash->after_round));
  }
  auto it = sent_log_.find({from, to});
  if (it != sent_log_.end()) {
    for (const auto& frame : it->second) {
      auto peeked = PeekEnvelopeSeq(frame);
      if (!peeked.ok() || peeked.ValueOrDie() != seq) continue;
      // A retransmission travels the same unreliable wire: it is metered
      // like any other message and the fault pipeline gets another shot at
      // it. Bounded attempts in RecvValidated guarantee termination.
      ++stats_.retransmits_served;
      MeterSend(from, frame.size(), frame.size() - kEnvelopeOverheadBytes);
      const int rule = Decide(from, to);
      if (rule >= 0) {
        const FaultKind kind = plan_.rules[static_cast<size_t>(rule)].kind;
        if (kind == FaultKind::kDrop || kind == FaultKind::kDelay) {
          ++(kind == FaultKind::kDrop ? stats_.dropped : stats_.delayed);
          return Status::FailedPrecondition("retransmitted frame lost on " +
                                            DescribeChannel(from, to));
        }
        if (kind == FaultKind::kCorrupt || kind == FaultKind::kTruncate) {
          ++(kind == FaultKind::kCorrupt ? stats_.corrupted
                                         : stats_.truncated);
          return Mutate(kind, frame);
        }
        // Duplicate / reorder have no meaning for a direct hand-back.
      }
      return frame;
    }
  }
  ++stats_.retransmits_refused;
  return Status::FailedPrecondition(
      "retransmit refused: no frame with seq " + std::to_string(seq) +
      " was ever sent on " + DescribeChannel(from, to));
}

}  // namespace psi
