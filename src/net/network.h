// In-process simulation of the multiparty setting.
//
// The paper's parties (the host H and the service providers P_1..P_m) are
// separate organizations; here they are objects exchanging byte buffers
// through this Network. The simulator enforces mailbox discipline (a party
// can only read messages addressed to it) and meters every transfer, which
// is what reproduces the paper's communication-cost evaluation:
//   NR = communication rounds, NM = total messages, MS = total bytes.
//
// Two transports coexist:
//  * Send/Recv — raw byte buffers, exactly as metered by the Table benches'
//    analytic model (payload bytes == wire bytes).
//  * SendFramed/RecvValidated — typed envelopes (net/envelope.h) with
//    per-channel sequence numbers and CRC validation. RecvValidated never
//    hands a corrupt, truncated, duplicated, reordered or mistagged frame to
//    a protocol decoder: it discards stale duplicates, stashes early frames,
//    requests bounded retransmission of missing/damaged ones, and returns a
//    clean ProtocolError when the channel cannot be repaired. Fault
//    injection layers (net/fault.h) override the virtual hooks.

#ifndef PSI_NET_NETWORK_H_
#define PSI_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/envelope.h"

namespace psi {

/// \brief Dense party identifier assigned by Network::RegisterParty.
using PartyId = uint32_t;

/// \brief Traffic recorded for one communication round.
struct RoundStats {
  std::string label;       ///< e.g. "P4.step2: H sends Omega_E'".
  uint64_t num_messages = 0;
  uint64_t num_bytes = 0;          ///< Wire bytes (framing included).
  uint64_t num_payload_bytes = 0;  ///< Application payload bytes only.
};

/// \brief Aggregate traffic report (the NR/NM/MS of Section 7.1).
struct TrafficReport {
  uint64_t num_rounds = 0;
  uint64_t num_messages = 0;
  uint64_t num_bytes = 0;          ///< Wire bytes (framing included).
  uint64_t num_payload_bytes = 0;  ///< Raw payload bytes (pre-envelope MS).
  std::vector<RoundStats> rounds;

  /// \brief Multi-line rendering shaped like the paper's Tables 1-2.
  std::string ToString() const;
};

/// \brief Upper bound on frames stashed ahead-of-sequence per channel.
///
/// RecvValidated keeps early frames (seq > expected) so a later call can
/// consume them without retransmission. The stash persists across calls, so
/// without a cap a peer that floods one channel with far-future sequence
/// numbers would grow it without limit. At the cap the receiver reports a
/// clean ProtocolError instead of buffering further.
inline constexpr size_t kMaxStashedFramesPerChannel = 64;

/// \brief Bounds for one RecvValidated call.
struct RecvOptions {
  /// Maximum transport attempts (initial receive plus retransmission
  /// requests plus damaged-frame retries) before giving up with a
  /// ProtocolError. This is the per-message attempt counter: a protocol
  /// driver can never hang waiting for a frame that will not arrive.
  int max_attempts = 6;
  /// Cap on RequestRetransmit calls within those attempts. Retransmission
  /// is the expensive repair path (a full extra transit of the frame), so
  /// it gets its own configurable budget instead of riding the fixed
  /// attempt constant; once spent, the call keeps draining pending frames
  /// but no longer asks the transport to re-deliver anything.
  int max_retransmits = 4;
  /// Free discards (stale duplicates, early-frame stashes) tolerated before
  /// giving up, so a flooded mailbox still terminates.
  int max_discards = 64;
  /// Wall-clock bound on the whole call, in milliseconds. 0 means "backend
  /// default": unbounded on the simulated Network (attempts alone bound the
  /// call), the configured receive timeout on the socket transport. A
  /// wedged peer that never sends therefore surfaces as a clean
  /// ProtocolError naming the deadline, never as a hang.
  uint64_t deadline_ms = 0;
};

/// \brief Simulated message-passing network with exact byte metering.
class Network {
 public:
  Network() = default;
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// \brief Adds a party; returns its id. Names are for reports only.
  PartyId RegisterParty(std::string name);

  size_t num_parties() const { return names_.size(); }
  const std::string& party_name(PartyId id) const { return names_[id]; }

  /// \brief Observer invoked at every BeginRound with the round's label and
  /// index. Chaos harnesses use it to act at exact protocol positions (kill
  /// a peer daemon at round k); operational backends use it for tracing.
  using RoundObserver = std::function<void(const std::string&, uint64_t)>;

  /// \brief Installs (or clears, with nullptr) the round observer.
  void SetRoundObserver(RoundObserver observer);

  /// \brief Opens a new communication round. All sends until the next
  /// BeginRound are accounted to this round. Rounds model the paper's
  /// definition: a stage where players send messages and the protocol
  /// proceeds only once all are delivered.
  virtual void BeginRound(std::string label);

  /// \brief Sends a raw `payload` from `from` to `to` (metered).
  [[nodiscard]] Status Send(PartyId from, PartyId to, std::vector<uint8_t> payload);

  /// \brief Seals `payload` in a typed envelope (protocol id, step tag,
  /// sender, per-channel sequence number, CRC) and sends it. Wire bytes are
  /// payload size plus the fixed kEnvelopeOverheadBytes.
  [[nodiscard]] Status SendFramed(PartyId from, PartyId to, ProtocolId protocol_id,
                    uint16_t step, const std::vector<uint8_t>& payload);

  /// \brief Receives the oldest pending message sent by `from` to `to`.
  /// Returns FailedPrecondition (naming both parties and the current round)
  /// if none is pending.
  [[nodiscard]] virtual Result<std::vector<uint8_t>> Recv(PartyId to, PartyId from);

  /// \brief Receives the next in-sequence framed message on (from -> to),
  /// validating magic, checksum, sender, protocol id and step tag before
  /// returning the payload. Damaged or missing frames trigger bounded
  /// retransmission requests (served only by fault-injection networks that
  /// keep pristine copies); stale duplicates are discarded; early frames are
  /// stashed for later calls. Exhausting `opts.max_attempts` yields a
  /// ProtocolError — never a hang and never a corrupt payload.
  [[nodiscard]] Result<std::vector<uint8_t>> RecvValidated(PartyId to, PartyId from,
                                             ProtocolId protocol_id,
                                             uint16_t step,
                                             const RecvOptions& opts = {});

  /// \brief Asks the transport to re-deliver the framed message with
  /// sequence number `seq` on channel (from -> to). The lossless base
  /// network keeps no copies (nothing is ever lost), so it reports
  /// FailedPrecondition; FaultyNetwork overrides this with a retransmission
  /// store.
  [[nodiscard]] virtual Result<std::vector<uint8_t>> RequestRetransmit(PartyId to,
                                                         PartyId from,
                                                         uint64_t seq);

  /// \brief Repairs the transport's own plumbing after a failure: a socket
  /// backend re-dials and re-authenticates every dead peer connection
  /// (seeded exponential backoff with jitter, bounded attempts) before the
  /// session layer replays protocol traffic. The in-process simulator has
  /// no plumbing to repair, so the base implementation is a no-op.
  /// SessionOrchestrator calls this before every resume handshake.
  [[nodiscard]] virtual Status Reestablish() { return Status::OK(); }

  /// \brief True if a message from `from` to `to` is pending.
  bool HasPending(PartyId to, PartyId from) const;

  /// \brief Total number of undelivered messages (0 after a clean protocol).
  size_t PendingCount() const;

  /// \brief Discards every undelivered message addressed to `to` and returns
  /// a human-readable summary of what was dropped ("2 message(s) from P1
  /// (sizes: 34, 12 bytes)"), or the empty string if the mailboxes were
  /// already clean. Tests assert `Drain(id) == ""` to get a useful diff.
  std::string Drain(PartyId to);

  /// \brief Drains every party's mailbox (see Drain). Drivers call this on
  /// their error paths so a failed run never leaves frames behind for an
  /// unrelated successor to misread; the chaos harness asserts
  /// `PendingCount() == 0` after every outcome.
  std::string DrainAll();

  /// \brief Re-synchronizes the framed channel (from -> to) after a session
  /// resume: the receiver's expected sequence number jumps to the sender's
  /// next unsent one and the early-frame stash is dropped. Any frame still
  /// in flight from before the resume becomes a stale duplicate (seq <
  /// expected), which RecvValidated already discards for free.
  void ResyncChannel(PartyId from, PartyId to);

  /// \brief Frames currently stashed ahead-of-sequence on (from -> to).
  size_t StashedCount(PartyId from, PartyId to) const;

  /// \brief Traffic so far.
  TrafficReport Report() const;

  /// \brief Bytes sent by one party across all rounds (wire bytes).
  uint64_t BytesSentBy(PartyId id) const;

  /// \brief Resets all metering (mailboxes must be empty). Sequence
  /// counters survive: they are transport state shared with the peers, not
  /// metering.
  [[nodiscard]] Status ResetMetering();

 protected:
  using ChannelKey = std::pair<PartyId, PartyId>;  // (from, to).

  /// \brief Argument validation shared by both send paths.
  [[nodiscard]] Status CheckSendArgs(PartyId from, PartyId to) const;

  /// \brief Accounts one transmission to the current round.
  void MeterSend(PartyId from, size_t wire_bytes, size_t payload_bytes);

  /// \brief Enqueues a frame without metering. `front` models reordering.
  void Deliver(PartyId from, PartyId to, std::vector<uint8_t> frame,
               bool front = false);

  /// \brief The delivery hook both send paths funnel through after
  /// validation and metering. Fault-injection layers override this to drop,
  /// duplicate, reorder, corrupt, truncate or delay the frame.
  [[nodiscard]] virtual Status Transmit(PartyId from, PartyId to,
                          std::vector<uint8_t> frame);

  /// \brief Blocks (up to `budget_ms`) until a message from `from` to `to`
  /// is pending, for backends where frames arrive asynchronously: the
  /// socket transport pumps its event loop here (reads, heartbeats,
  /// dead-peer detection). The simulator's mailboxes are synchronous, so
  /// the base implementation returns immediately. A non-OK return means the
  /// channel is known-unrepairable right now (peer declared dead), not
  /// merely empty.
  [[nodiscard]] virtual Status WaitForPending(PartyId to, PartyId from,
                                              uint64_t budget_ms);

  /// \brief Backend default for RecvOptions::deadline_ms == 0. The
  /// simulator returns 0 (no wall-clock bound); the socket transport
  /// returns its configured receive timeout.
  virtual uint64_t DefaultRecvDeadlineMs() const { return 0; }

  bool ValidParty(PartyId id) const { return id < names_.size(); }

  /// \brief Index of the current round (0 before any BeginRound).
  uint64_t RoundIndex() const {
    return rounds_.empty() ? 0 : rounds_.size() - 1;
  }

  /// \brief Label of the current round, or "<no round>" before the first.
  const std::string& CurrentRoundLabel() const;

  /// \brief "P1 -> H" with names when known, ids otherwise.
  std::string DescribeChannel(PartyId from, PartyId to) const;

 private:
  RoundObserver round_observer_;
  std::vector<std::string> names_;
  // (from, to) -> FIFO of payloads.
  std::map<ChannelKey, std::deque<std::vector<uint8_t>>> mailboxes_;
  std::vector<RoundStats> rounds_;
  std::vector<uint64_t> bytes_sent_by_;
  // Framed-transport state: next sequence number to assign / to accept,
  // plus frames that arrived ahead of sequence.
  std::map<ChannelKey, uint64_t> send_seq_;
  std::map<ChannelKey, uint64_t> recv_seq_;
  std::map<ChannelKey, std::map<uint64_t, std::vector<uint8_t>>> stash_;
};

/// \brief Optional capability of a transport backend: executing a stage
/// program on the daemon that hosts a party (mpc/remote_exec builds the
/// request/response payloads; this interface only moves bytes).
///
/// A backend implementing this carries ProtocolId::kExec envelopes to the
/// daemon as transport messages (TransportMsgKind::kExec), NOT as protocol
/// traffic: exec round trips are tallied in transport counters and never
/// touch the TrafficReport, which is what keeps a remote-executed run's
/// protocol metering bitwise-identical to the simulator's. The in-process
/// simulator does not implement it, so every stage simply runs locally.
class RemoteExecTransport {
 public:
  virtual ~RemoteExecTransport() = default;

  /// \brief True when `party` has a daemon-hosted wire presence that exec
  /// requests can be routed to (regardless of current link health —
  /// Reestablish may repair a dead link between attempts).
  virtual bool RemoteExecAvailable(PartyId party) const = 0;

  /// \brief Ships `request_frame` (a sealed ProtocolId::kExec envelope) to
  /// the daemon hosting `party` and blocks — pumping the event loop — until
  /// a result envelope whose sequence field equals `expected_seq` arrives,
  /// the link dies, or `deadline_ms` expires. Results with a different
  /// sequence are stale leftovers of a timed-out earlier call and are
  /// discarded. While the call is in flight the busy daemon is exempt from
  /// heartbeat dead-peer detection (a computing daemon is silent, not
  /// dead); a killed daemon still fails fast through the socket error.
  [[nodiscard]] virtual Result<std::vector<uint8_t>> RemoteCall(
      PartyId party, const std::vector<uint8_t>& request_frame,
      uint64_t deadline_ms, uint64_t expected_seq) = 0;
};

/// \brief Returns `result` unchanged on success; on error, drains every
/// mailbox first and appends the per-channel discard summary ("2 message(s)
/// from P1 ...") to the error's context. Protocol drivers route their
/// public entry points through this so a failed run never leaves
/// half-consumed frames behind for an unrelated successor protocol to
/// misread — and so a chaos-run error names exactly what it threw away;
/// the chaos harness asserts `PendingCount() == 0` after every outcome.
template <typename T>
[[nodiscard]] Result<T> DrainOnError(Network* network, Result<T> result) {
  if (!result.ok()) {
    std::string drained = network->DrainAll();
    if (!drained.empty()) {
      return Status(result.status().code(),
                    result.status().message() + " [drained: " + drained + "]");
    }
  }
  return result;
}

}  // namespace psi

#endif  // PSI_NET_NETWORK_H_
