// In-process simulation of the multiparty setting.
//
// The paper's parties (the host H and the service providers P_1..P_m) are
// separate organizations; here they are objects exchanging byte buffers
// through this Network. The simulator enforces mailbox discipline (a party
// can only read messages addressed to it) and meters every transfer, which
// is what reproduces the paper's communication-cost evaluation:
//   NR = communication rounds, NM = total messages, MS = total bytes.

#ifndef PSI_NET_NETWORK_H_
#define PSI_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Dense party identifier assigned by Network::RegisterParty.
using PartyId = uint32_t;

/// \brief Traffic recorded for one communication round.
struct RoundStats {
  std::string label;       ///< e.g. "P4.step2: H sends Omega_E'".
  uint64_t num_messages = 0;
  uint64_t num_bytes = 0;
};

/// \brief Aggregate traffic report (the NR/NM/MS of Section 7.1).
struct TrafficReport {
  uint64_t num_rounds = 0;
  uint64_t num_messages = 0;
  uint64_t num_bytes = 0;
  std::vector<RoundStats> rounds;

  /// \brief Multi-line rendering shaped like the paper's Tables 1-2.
  std::string ToString() const;
};

/// \brief Simulated message-passing network with exact byte metering.
class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// \brief Adds a party; returns its id. Names are for reports only.
  PartyId RegisterParty(std::string name);

  size_t num_parties() const { return names_.size(); }
  const std::string& party_name(PartyId id) const { return names_[id]; }

  /// \brief Opens a new communication round. All sends until the next
  /// BeginRound are accounted to this round. Rounds model the paper's
  /// definition: a stage where players send messages and the protocol
  /// proceeds only once all are delivered.
  void BeginRound(std::string label);

  /// \brief Sends `payload` from `from` to `to` (metered).
  Status Send(PartyId from, PartyId to, std::vector<uint8_t> payload);

  /// \brief Receives the oldest pending message sent by `from` to `to`.
  /// Returns FailedPrecondition if none is pending.
  Result<std::vector<uint8_t>> Recv(PartyId to, PartyId from);

  /// \brief True if a message from `from` to `to` is pending.
  bool HasPending(PartyId to, PartyId from) const;

  /// \brief Total number of undelivered messages (0 after a clean protocol).
  size_t PendingCount() const;

  /// \brief Traffic so far.
  TrafficReport Report() const;

  /// \brief Bytes sent by one party across all rounds.
  uint64_t BytesSentBy(PartyId id) const;

  /// \brief Resets all metering (mailboxes must be empty).
  Status ResetMetering();

 private:
  bool ValidParty(PartyId id) const { return id < names_.size(); }

  std::vector<std::string> names_;
  // (from, to) -> FIFO of payloads.
  std::map<std::pair<PartyId, PartyId>, std::deque<std::vector<uint8_t>>>
      mailboxes_;
  std::vector<RoundStats> rounds_;
  std::vector<uint64_t> bytes_sent_by_;
};

}  // namespace psi

#endif  // PSI_NET_NETWORK_H_
