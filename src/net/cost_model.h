// Analytic communication-cost model of Section 7.1: the closed-form per-round
// message counts and sizes of Table 1 (Protocol 4) and Table 2 (Protocol 6).
// The Table benches print these next to the byte counts measured by the
// Network simulator.

#ifndef PSI_NET_COST_MODEL_H_
#define PSI_NET_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief One analytic row: a communication round of a protocol.
struct CostRow {
  std::string step;       ///< Protocol step, as labeled in the paper's table.
  uint64_t num_messages;  ///< Messages sent in this round.
  uint64_t bits_per_message;  ///< Size of each message in bits.

  uint64_t TotalBits() const { return num_messages * bits_per_message; }
};

/// \brief Analytic totals (NR / NM / MS of Section 7.1).
struct CostSummary {
  std::vector<CostRow> rows;
  uint64_t nr = 0;  ///< Number of communication rounds.
  uint64_t nm = 0;  ///< Total number of messages.
  uint64_t ms_bits = 0;  ///< Total size of all messages in bits.

  std::string ToString() const;
};

/// \brief Parameters of the Protocol 4 cost model (Table 1).
struct Protocol4CostParams {
  uint64_t m;          ///< Number of service providers.
  uint64_t n;          ///< Number of users.
  uint64_t q;          ///< |E'| = c * |E| obfuscated arcs.
  uint64_t log_s;      ///< Bits of the share modulus S.
  uint64_t f = 64;     ///< Bits per transmitted real number.
  uint64_t index_bits = 32;  ///< Bits per node index in Omega_E'.
};

/// \brief Table 1: the eight communication rounds of Protocol 4.
/// NR = 8, NM = m^2 + m + 7, MS = O(m^2 (n+q) log S).
/// Returns InvalidArgument if p.m < 2 (Protocol 4 needs two providers).
[[nodiscard]] Result<CostSummary> Protocol4Costs(const Protocol4CostParams& p);

/// \brief Parameters of the Protocol 6 cost model (Table 2).
struct Protocol6CostParams {
  uint64_t m;      ///< Number of service providers.
  uint64_t q;      ///< |E'|.
  uint64_t z;      ///< Ciphertext size in bits (1024 for RSA).
  uint64_t kappa;  ///< Public key size in bits.
  std::vector<uint64_t> actions_per_provider;  ///< A_k, k = 1..m.
  uint64_t index_bits = 32;
  /// Deltas per ciphertext under kPackedInteger (crypto/packing.h); 1
  /// reproduces Table 2 exactly. Each action vector then costs
  /// ceil(q / slots) * z bits instead of q * z.
  uint64_t slots_per_ciphertext = 1;
};

/// \brief Table 2: the four communication rounds of Protocol 6.
/// NR = 4, NM = 3m, MS <= 2 q z A bits (dominant terms).
/// Returns InvalidArgument unless p.actions_per_provider has exactly p.m
/// entries (and p.m >= 1).
[[nodiscard]] Result<CostSummary> Protocol6Costs(const Protocol6CostParams& p);

/// \brief Wire bits of a summary when every analytic message is carried in a
/// typed envelope (net/envelope.h): ms_bits plus the fixed per-message
/// framing overhead.
uint64_t EnvelopedBits(const CostSummary& s);

/// \brief Parameters of the homomorphic-sum extension's cost model.
struct HomomorphicSumCostParams {
  uint64_t m;         ///< Number of players.
  uint64_t count;     ///< Counters aggregated.
  uint64_t key_bits;  ///< Paillier modulus size |N|.
  /// Counters per ciphertext (HomomorphicSumPackedCodec geometry); 1 models
  /// the unpacked path.
  uint64_t slots_per_ciphertext = 1;
};

/// \brief Exact payload bits of the three homomorphic-sum rounds, matching
/// the implementation's serialization byte for byte (varint-framed BigUInt
/// vectors, full-width ciphertexts of 2 * key_bits bits). NR = 3,
/// NM = 2m - 2. With slots > 1 the ciphertext rounds carry
/// ceil(count / slots) ciphertexts instead of count.
[[nodiscard]] Result<CostSummary> HomomorphicSumCosts(const HomomorphicSumCostParams& p);

/// \brief Packed-vs-unpacked comparison at identical m/count/key_bits: the
/// headline bandwidth number of the packing optimisation.
struct PackingSavingsReport {
  CostSummary unpacked;  ///< slots = 1.
  CostSummary packed;    ///< slots as passed.
  /// EnvelopedBits(unpacked) / EnvelopedBits(packed).
  double EnvelopeRatio() const;
};
[[nodiscard]] Result<PackingSavingsReport> HomomorphicSumPackingSavings(
    const HomomorphicSumCostParams& p);

/// \brief Parameters of the session resume-handshake cost model
/// (mpc/session.h). One resume costs exactly one round in which every
/// ordered pair of live session parties exchanges one fixed-size sync
/// message (u32 attempt + u32 next_stage = 8 bytes of payload).
struct SessionResumeCostParams {
  uint64_t num_parties;  ///< Parties in the session (host + providers).
};

/// \brief Exact analytic cost of one resume handshake: NR = 1,
/// NM = P * (P - 1), 64 payload bits per message. Retransmissions injected
/// by a fault layer during the handshake are extra, exactly as for every
/// other round. Returns InvalidArgument if p.num_parties < 2.
[[nodiscard]] Result<CostSummary> SessionResumeCosts(
    const SessionResumeCostParams& p);

/// \brief Parameters of the socket transport's overhead model
/// (net/socket_transport.h). Protocol metering is identical on both
/// backends; this model prices the extra transport bytes a socket run
/// pays on the wire for a given protocol transcript.
struct TransportOverheadCostParams {
  uint64_t relayed_messages;   ///< Protocol messages that cross a daemon.
  uint64_t heartbeats = 0;     ///< Probes sent while blocked waiting.
  uint64_t reconnects = 0;     ///< Dial+auth handshakes after failures.
  uint64_t session_name_bytes = 16;  ///< Hello field sizes (model inputs).
  uint64_t hosted_parties = 1;       ///< Parties per hello (1-byte varints).
};

/// \brief Analytic transport bytes of a socket run: each relayed protocol
/// message is framed twice (client -> daemon and the echo back), costing
/// 2 * (12-byte transport header + 8-byte routing prefix) on top of its
/// envelope; a heartbeat and its ack cost one empty-body header each; a
/// reconnect costs the challenge/hello/ack exchange, whose hello carries a
/// length-prefixed session string, the 32-byte digest, and the party list.
struct TransportOverheadReport {
  uint64_t relay_overhead_bytes = 0;
  uint64_t heartbeat_bytes = 0;
  uint64_t reconnect_bytes = 0;
  uint64_t total_overhead_bytes = 0;
  /// total_overhead_bytes / protocol_bytes (0 when protocol_bytes is 0).
  double OverheadRatio(uint64_t protocol_bytes) const;
};
[[nodiscard]] Result<TransportOverheadReport> TransportOverheadCosts(
    const TransportOverheadCostParams& p);

}  // namespace psi

#endif  // PSI_NET_COST_MODEL_H_
