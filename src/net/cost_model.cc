#include "net/cost_model.h"

#include <cstdio>
#include <numeric>

#include "net/envelope.h"

namespace psi {

std::string CostSummary::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-40s %14s %18s\n", "communication round",
                "num messages", "bits per message");
  out += line;
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line), "%-40s %14llu %18llu\n", r.step.c_str(),
                  static_cast<unsigned long long>(r.num_messages),
                  static_cast<unsigned long long>(r.bits_per_message));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "NR=%llu  NM=%llu  MS=%llu bits (%.2f MiB)\n",
                static_cast<unsigned long long>(nr),
                static_cast<unsigned long long>(nm),
                static_cast<unsigned long long>(ms_bits),
                static_cast<double>(ms_bits) / 8.0 / 1024.0 / 1024.0);
  out += line;
  return out;
}

namespace {

CostSummary Summarize(std::vector<CostRow> rows) {
  CostSummary s;
  s.rows = std::move(rows);
  s.nr = s.rows.size();
  for (const auto& r : s.rows) {
    s.nm += r.num_messages;
    s.ms_bits += r.TotalBits();
  }
  return s;
}

}  // namespace

Result<CostSummary> Protocol4Costs(const Protocol4CostParams& p) {
  if (p.m < 2) {
    return Status::InvalidArgument(
        "Protocol 4 cost model requires at least two providers (m = " +
        std::to_string(p.m) + ")");
  }
  const uint64_t nq = p.n + p.q;
  std::vector<CostRow> rows = {
      // H distributes the obfuscated arc index set Omega_E'.
      {"Step 2 (H -> P_k: Omega_E')", p.m, 2 * p.q * p.index_bits},
      // Batched Protocol 1, step 2: every player sends a share vector to
      // every other player.
      {"Steps 3-4; Prot.1, Step 2", p.m * (p.m - 1), nq * p.log_s},
      // Batched Protocol 1, step 4: P_3..P_m forward their sums to P_2.
      {"Steps 3-4; Prot.1, Step 4", p.m - 2, nq * p.log_s},
      // Batched Protocol 2, steps 3-4: P_1 and P_2 send to the third party.
      {"Steps 3-4; Prot.2, Steps 3-4", 2, nq * p.log_s},
      // Batched Protocol 2, step 6: one comparison bit per counter.
      {"Steps 3-4; Prot.2, Step 6", 1, nq},
      // Joint generation of M_i (one real per user, both directions).
      {"Step 5 (joint M_i)", 2, p.n * p.f},
      // Joint generation of r_i.
      {"Step 6 (joint r_i)", 2, p.n * p.f},
      // P_1 and P_2 send all masked shares to H.
      {"Steps 7-8 (masked shares -> H)", 2, nq * p.f},
  };
  return Summarize(std::move(rows));
}

Result<CostSummary> Protocol6Costs(const Protocol6CostParams& p) {
  if (p.m == 0 || p.actions_per_provider.size() != p.m) {
    return Status::InvalidArgument(
        "Protocol 6 cost model needs one action count per provider (m = " +
        std::to_string(p.m) + ", got " +
        std::to_string(p.actions_per_provider.size()) + ")");
  }
  const uint64_t total_actions =
      std::accumulate(p.actions_per_provider.begin(),
                      p.actions_per_provider.end(), uint64_t{0});

  std::vector<CostRow> rows;
  rows.push_back({"Step 2 (H -> P_k: Omega_E')", p.m, 2 * p.q * p.index_bits});
  rows.push_back({"Step 3 (H -> P_k: public key)", p.m, p.kappa});
  // Round 3: P_2..P_m each send their encrypted Delta vectors to P_1. The
  // k-th message carries A_k actions, each a vector of q encrypted integers.
  // Messages differ in size, so the table reports the average; NM and total
  // bits are exact.
  uint64_t relay_actions = total_actions - p.actions_per_provider[0];
  uint64_t relay_bits = p.q * p.z * relay_actions;
  uint64_t relay_msgs = p.m - 1;
  rows.push_back({"Steps 4-9 (P_k -> P_1: E(Delta))", relay_msgs,
                  relay_msgs == 0 ? 0 : relay_bits / relay_msgs});
  CostSummary s = Summarize(std::move(rows));
  // Patch exact bits for the unequal-size round.
  s.ms_bits += relay_bits - (relay_msgs == 0 ? 0 : relay_bits / relay_msgs) * relay_msgs;
  // Round 4: P_1 forwards everything (its own + relayed) to H.
  s.rows.push_back({"Step 10 (P_1 -> H: all E(Delta))", 1,
                    p.q * p.z * total_actions});
  s.nr += 1;
  s.nm += 1;
  s.ms_bits += p.q * p.z * total_actions;
  return s;
}

uint64_t EnvelopedBits(const CostSummary& s) {
  return s.ms_bits + s.nm * kEnvelopeOverheadBytes * 8;
}

}  // namespace psi
