#include "net/cost_model.h"

#include <cstdio>
#include <numeric>

#include "net/envelope.h"
#include "net/socket_util.h"

namespace psi {

std::string CostSummary::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-40s %14s %18s\n", "communication round",
                "num messages", "bits per message");
  out += line;
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line), "%-40s %14llu %18llu\n", r.step.c_str(),
                  static_cast<unsigned long long>(r.num_messages),
                  static_cast<unsigned long long>(r.bits_per_message));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "NR=%llu  NM=%llu  MS=%llu bits (%.2f MiB)\n",
                static_cast<unsigned long long>(nr),
                static_cast<unsigned long long>(nm),
                static_cast<unsigned long long>(ms_bits),
                static_cast<double>(ms_bits) / 8.0 / 1024.0 / 1024.0);
  out += line;
  return out;
}

namespace {

CostSummary Summarize(std::vector<CostRow> rows) {
  CostSummary s;
  s.rows = std::move(rows);
  s.nr = s.rows.size();
  for (const auto& r : s.rows) {
    s.nm += r.num_messages;
    s.ms_bits += r.TotalBits();
  }
  return s;
}

}  // namespace

Result<CostSummary> Protocol4Costs(const Protocol4CostParams& p) {
  if (p.m < 2) {
    return Status::InvalidArgument(
        "Protocol 4 cost model requires at least two providers (m = " +
        std::to_string(p.m) + ")");
  }
  const uint64_t nq = p.n + p.q;
  std::vector<CostRow> rows = {
      // H distributes the obfuscated arc index set Omega_E'.
      {"Step 2 (H -> P_k: Omega_E')", p.m, 2 * p.q * p.index_bits},
      // Batched Protocol 1, step 2: every player sends a share vector to
      // every other player.
      {"Steps 3-4; Prot.1, Step 2", p.m * (p.m - 1), nq * p.log_s},
      // Batched Protocol 1, step 4: P_3..P_m forward their sums to P_2.
      {"Steps 3-4; Prot.1, Step 4", p.m - 2, nq * p.log_s},
      // Batched Protocol 2, steps 3-4: P_1 and P_2 send to the third party.
      {"Steps 3-4; Prot.2, Steps 3-4", 2, nq * p.log_s},
      // Batched Protocol 2, step 6: one comparison bit per counter.
      {"Steps 3-4; Prot.2, Step 6", 1, nq},
      // Joint generation of M_i (one real per user, both directions).
      {"Step 5 (joint M_i)", 2, p.n * p.f},
      // Joint generation of r_i.
      {"Step 6 (joint r_i)", 2, p.n * p.f},
      // P_1 and P_2 send all masked shares to H.
      {"Steps 7-8 (masked shares -> H)", 2, nq * p.f},
  };
  return Summarize(std::move(rows));
}

Result<CostSummary> Protocol6Costs(const Protocol6CostParams& p) {
  if (p.m == 0 || p.actions_per_provider.size() != p.m) {
    return Status::InvalidArgument(
        "Protocol 6 cost model needs one action count per provider (m = " +
        std::to_string(p.m) + ", got " +
        std::to_string(p.actions_per_provider.size()) + ")");
  }
  if (p.slots_per_ciphertext == 0) {
    return Status::InvalidArgument("slots_per_ciphertext must be >= 1");
  }
  const uint64_t total_actions =
      std::accumulate(p.actions_per_provider.begin(),
                      p.actions_per_provider.end(), uint64_t{0});
  // Ciphertexts per action vector: q under kPerInteger, ceil(q / slots)
  // under kPackedInteger.
  const uint64_t cts_per_action =
      (p.q + p.slots_per_ciphertext - 1) / p.slots_per_ciphertext;

  std::vector<CostRow> rows;
  rows.push_back({"Step 2 (H -> P_k: Omega_E')", p.m, 2 * p.q * p.index_bits});
  rows.push_back({"Step 3 (H -> P_k: public key)", p.m, p.kappa});
  // Round 3: P_2..P_m each send their encrypted Delta vectors to P_1. The
  // k-th message carries A_k actions, each a vector of q encrypted integers.
  // Messages differ in size, so the table reports the average; NM and total
  // bits are exact.
  uint64_t relay_actions = total_actions - p.actions_per_provider[0];
  uint64_t relay_bits = cts_per_action * p.z * relay_actions;
  uint64_t relay_msgs = p.m - 1;
  rows.push_back({"Steps 4-9 (P_k -> P_1: E(Delta))", relay_msgs,
                  relay_msgs == 0 ? 0 : relay_bits / relay_msgs});
  CostSummary s = Summarize(std::move(rows));
  // Patch exact bits for the unequal-size round.
  s.ms_bits += relay_bits - (relay_msgs == 0 ? 0 : relay_bits / relay_msgs) * relay_msgs;
  // Round 4: P_1 forwards everything (its own + relayed) to H.
  s.rows.push_back({"Step 10 (P_1 -> H: all E(Delta))", 1,
                    cts_per_action * p.z * total_actions});
  s.nr += 1;
  s.nm += 1;
  s.ms_bits += cts_per_action * p.z * total_actions;
  return s;
}

namespace {

// Serialized size of one full-width b-bit BigUInt: varint limb count
// followed by ceil(b / 64) 8-byte limbs (bigint/biguint.h wire format).
uint64_t SerializedBigUIntBits(uint64_t bit_length) {
  const uint64_t limbs = (bit_length + 63) / 64;
  uint64_t varint_bytes = 1;
  for (uint64_t v = limbs; v >= 0x80; v >>= 7) ++varint_bytes;
  return 8 * (varint_bytes + 8 * limbs);
}

// Payload bits of a varint-framed vector of `count` full-width values.
uint64_t BigUIntVectorBits(uint64_t count, uint64_t bit_length) {
  uint64_t varint_bytes = 1;
  for (uint64_t v = count; v >= 0x80; v >>= 7) ++varint_bytes;
  return 8 * varint_bytes + count * SerializedBigUIntBits(bit_length);
}

}  // namespace

Result<CostSummary> HomomorphicSumCosts(const HomomorphicSumCostParams& p) {
  if (p.m < 2) {
    return Status::InvalidArgument(
        "homomorphic sum cost model requires at least two players");
  }
  if (p.slots_per_ciphertext == 0) {
    return Status::InvalidArgument("slots_per_ciphertext must be >= 1");
  }
  const uint64_t num_ct =
      (p.count + p.slots_per_ciphertext - 1) / p.slots_per_ciphertext;
  // Ciphertexts are uniform mod N^2, i.e. full-width 2 * key_bits values
  // (a short top limb happens with probability ~2^-64 and is ignored).
  const uint64_t ct_vector_bits = BigUIntVectorBits(num_ct, 2 * p.key_bits);
  std::vector<CostRow> rows = {
      {"HSum.Step1 (P1 -> P_k: key)", p.m - 1,
       SerializedBigUIntBits(p.key_bits)},
      {"HSum.Step2 (P_k -> P2: E(x_k))", p.m - 2, ct_vector_bits},
      {"HSum.Step3 (P2 -> P1: aggregate)", 1, ct_vector_bits},
  };
  return Summarize(std::move(rows));
}

double PackingSavingsReport::EnvelopeRatio() const {
  const uint64_t packed_bits = EnvelopedBits(packed);
  if (packed_bits == 0) return 0.0;
  return static_cast<double>(EnvelopedBits(unpacked)) /
         static_cast<double>(packed_bits);
}

Result<PackingSavingsReport> HomomorphicSumPackingSavings(
    const HomomorphicSumCostParams& p) {
  HomomorphicSumCostParams unpacked = p;
  unpacked.slots_per_ciphertext = 1;
  PackingSavingsReport report;
  PSI_ASSIGN_OR_RETURN(report.unpacked, HomomorphicSumCosts(unpacked));
  PSI_ASSIGN_OR_RETURN(report.packed, HomomorphicSumCosts(p));
  return report;
}

uint64_t EnvelopedBits(const CostSummary& s) {
  return s.ms_bits + s.nm * kEnvelopeOverheadBytes * 8;
}

Result<CostSummary> SessionResumeCosts(const SessionResumeCostParams& p) {
  if (p.num_parties < 2) {
    return Status::InvalidArgument(
        "SessionResumeCosts: a session needs at least 2 parties");
  }
  std::vector<CostRow> rows = {
      {"Session.resume (pairwise sync)", p.num_parties * (p.num_parties - 1),
       64},
  };
  return Summarize(std::move(rows));
}

double TransportOverheadReport::OverheadRatio(uint64_t protocol_bytes) const {
  if (protocol_bytes == 0) return 0.0;
  return static_cast<double>(total_overhead_bytes) /
         static_cast<double>(protocol_bytes);
}

Result<TransportOverheadReport> TransportOverheadCosts(
    const TransportOverheadCostParams& p) {
  if (p.hosted_parties > 127) {
    return Status::InvalidArgument(
        "TransportOverheadCosts: the 1-byte-varint party model stops at "
        "127 hosted parties");
  }
  constexpr uint64_t kHeader = kTransportHeaderBytes;
  constexpr uint64_t kRoutingPrefix = 8;  // u32 from + u32 to.
  TransportOverheadReport report;
  // A relayed frame is framed client -> daemon and again on the echo back.
  report.relay_overhead_bytes =
      p.relayed_messages * 2 * (kHeader + kRoutingPrefix);
  // Probe and answer each carry an empty body.
  report.heartbeat_bytes = p.heartbeats * 2 * kHeader;
  // challenge(nonce) + hello(session, digest, parties) + ack(u8, "ok").
  const uint64_t hello_body = (1 + p.session_name_bytes) + (1 + 32) + 1 +
                              p.hosted_parties;
  const uint64_t ack_body = 1 + (1 + 2);
  report.reconnect_bytes =
      p.reconnects * ((kHeader + kAuthNonceBytes) + (kHeader + hello_body) +
                      (kHeader + ack_body));
  report.total_overhead_bytes = report.relay_overhead_bytes +
                                report.heartbeat_bytes +
                                report.reconnect_bytes;
  return report;
}

}  // namespace psi
