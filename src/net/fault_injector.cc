#include "net/fault_injector.h"

#include <algorithm>
#include <utility>

#include "net/envelope.h"

namespace psi {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

FaultPlan FaultPlan::RandomPlan(uint64_t seed, size_t num_parties) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  FaultPlan plan;
  plan.seed = seed;
  const size_t num_rules = 1 + rng.UniformU64(3);
  for (size_t i = 0; i < num_rules; ++i) {
    FaultRule rule;
    rule.kind = static_cast<FaultKind>(rng.UniformU64(6));
    // Mostly wildcard channels; occasionally pin one endpoint.
    if (num_parties > 0 && rng.Bernoulli(0.3)) {
      rule.from = static_cast<PartyId>(rng.UniformU64(num_parties));
    }
    if (num_parties > 0 && rng.Bernoulli(0.3)) {
      rule.to = static_cast<PartyId>(rng.UniformU64(num_parties));
    }
    rule.probability = rng.UniformReal(0.05, 0.35);
    rule.max_triggers = static_cast<uint32_t>(1 + rng.UniformU64(4));
    plan.rules.push_back(rule);
  }
  if (num_parties > 1 && rng.Bernoulli(0.15)) {
    CrashSpec crash;
    // Never crash party 0: by convention that is the host H, without which
    // no protocol can even start a round.
    crash.party = static_cast<PartyId>(1 + rng.UniformU64(num_parties - 1));
    crash.after_round = 1 + rng.UniformU64(6);
    plan.crash = crash;
  }
  return plan;
}

FaultPlan FaultPlan::RandomRestartPlan(uint64_t seed, size_t num_parties) {
  Rng rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
  FaultPlan plan;
  plan.seed = seed;
  // 0-2 light rules so recovery is exercised both alone and under noise.
  const size_t num_rules = rng.UniformU64(3);
  for (size_t i = 0; i < num_rules; ++i) {
    FaultRule rule;
    rule.kind = static_cast<FaultKind>(rng.UniformU64(6));
    rule.probability = rng.UniformReal(0.05, 0.2);
    rule.max_triggers = static_cast<uint32_t>(1 + rng.UniformU64(3));
    plan.rules.push_back(rule);
  }
  CrashSpec crash;
  // Never crash party 0 (the host H, without which no round can start).
  crash.party = num_parties > 1
                    ? static_cast<PartyId>(1 + rng.UniformU64(num_parties - 1))
                    : kAnyParty;
  crash.after_round = rng.UniformU64(8);
  crash.restart_round = crash.after_round + 2 + rng.UniformU64(6);
  plan.crash = crash;
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      triggers_used_(plan_.rules.size(), 0) {}

bool FaultInjector::Crashed(PartyId party, uint64_t round) const {
  if (!plan_.crash.has_value() || plan_.crash->party != party) return false;
  return round > plan_.crash->after_round &&
         round < plan_.crash->restart_round;
}

int FaultInjector::Decide(uint64_t round, PartyId from, PartyId to) {
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.from != kAnyParty && rule.from != from) continue;
    if (rule.to != kAnyParty && rule.to != to) continue;
    if (round < rule.round_min || round > rule.round_max) continue;
    if (triggers_used_[i] >= rule.max_triggers) continue;
    // Draw the coin only for matching rules so the decision stream is a
    // deterministic function of the message sequence.
    if (!rng_.Bernoulli(rule.probability)) continue;
    ++triggers_used_[i];
    return static_cast<int>(i);
  }
  return -1;
}

std::vector<uint8_t> FaultInjector::Mutate(FaultKind kind,
                                           std::vector<uint8_t> frame) {
  switch (kind) {
    case FaultKind::kCorrupt: {
      if (!frame.empty()) {
        const uint64_t bit = rng_.UniformU64(frame.size() * 8);
        frame[bit / 8] = static_cast<uint8_t>(frame[bit / 8] ^
                                              (1u << (bit % 8)));
      }
      return frame;
    }
    case FaultKind::kTruncate: {
      if (!frame.empty()) {
        frame.resize(rng_.UniformU64(frame.size()));
      }
      return frame;
    }
    default:
      return frame;
  }
}

FaultInjector::Verdict FaultInjector::OnTransmit(uint64_t round, PartyId from,
                                                 PartyId to,
                                                 std::vector<uint8_t> frame) {
  Verdict verdict;
  if (Crashed(from, round)) {
    ++stats_.crash_dropped;
    verdict.action = Action::kSwallow;  // The receiver sees only silence.
    return verdict;
  }
  ++stats_.transmitted;
  sent_log_[{from, to}].push_back(frame);  // Pristine copy, pre-fault.
  const int rule = Decide(round, from, to);
  if (rule < 0) {
    verdict.frame = std::move(frame);
    return verdict;
  }
  switch (plan_.rules[static_cast<size_t>(rule)].kind) {
    case FaultKind::kDrop:
      ++stats_.dropped;
      verdict.action = Action::kSwallow;
      return verdict;
    case FaultKind::kDuplicate:
      ++stats_.duplicated;
      verdict.action = Action::kDeliverTwice;
      verdict.frame = std::move(frame);
      return verdict;
    case FaultKind::kReorder:
      ++stats_.reordered;
      verdict.action = Action::kDeliverFront;
      verdict.frame = std::move(frame);
      return verdict;
    case FaultKind::kCorrupt:
      ++stats_.corrupted;
      verdict.frame = Mutate(FaultKind::kCorrupt, std::move(frame));
      return verdict;
    case FaultKind::kTruncate:
      ++stats_.truncated;
      verdict.frame = Mutate(FaultKind::kTruncate, std::move(frame));
      return verdict;
    case FaultKind::kDelay:
      ++stats_.delayed;
      delayed_.emplace_back(ChannelKey{from, to}, std::move(frame));
      verdict.action = Action::kSwallow;
      return verdict;
  }
  return verdict;
}

std::vector<std::pair<FaultInjector::ChannelKey, std::vector<uint8_t>>>
FaultInjector::TakeDelayed() {
  std::vector<std::pair<ChannelKey, std::vector<uint8_t>>> due;
  due.swap(delayed_);
  return due;
}

FaultInjector::Retransmission FaultInjector::OnRetransmit(
    uint64_t round, PartyId to, PartyId from, uint64_t seq,
    const std::string& channel, const std::string& sender) {
  Retransmission out;
  if (Crashed(from, round)) {
    ++stats_.retransmits_refused;
    out.result = Status::FailedPrecondition(
        "retransmit refused: " + sender + " crashed after round " +
        std::to_string(plan_.crash->after_round));
    return out;
  }
  auto it = sent_log_.find({from, to});
  if (it != sent_log_.end()) {
    for (const auto& frame : it->second) {
      auto peeked = PeekEnvelopeSeq(frame);
      if (!peeked.ok() || peeked.ValueOrDie() != seq) continue;
      // A retransmission travels the same unreliable wire: the transport
      // meters it like any other message and the fault pipeline gets
      // another shot at it. Bounded attempts in RecvValidated guarantee
      // termination.
      ++stats_.retransmits_served;
      out.wire_bytes = frame.size();
      out.payload_bytes = frame.size() - kEnvelopeOverheadBytes;
      const int rule = Decide(round, from, to);
      if (rule >= 0) {
        const FaultKind kind = plan_.rules[static_cast<size_t>(rule)].kind;
        if (kind == FaultKind::kDrop || kind == FaultKind::kDelay) {
          ++(kind == FaultKind::kDrop ? stats_.dropped : stats_.delayed);
          out.result = Status::FailedPrecondition(
              "retransmitted frame lost on " + channel);
          return out;
        }
        if (kind == FaultKind::kCorrupt || kind == FaultKind::kTruncate) {
          ++(kind == FaultKind::kCorrupt ? stats_.corrupted
                                         : stats_.truncated);
          out.result = Mutate(kind, frame);
          return out;
        }
        // Duplicate / reorder have no meaning for a direct hand-back.
      }
      out.result = frame;
      return out;
    }
  }
  ++stats_.retransmits_refused;
  out.result = Status::FailedPrecondition(
      "retransmit refused: no frame with seq " + std::to_string(seq) +
      " was ever sent on " + channel);
  return out;
}

}  // namespace psi
