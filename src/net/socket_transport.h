// Socket-backed transport: the Network interface over real TCP loopback.
//
// The repo's protocol drivers are SPMD — one process executes every
// party's code in lockstep — so SocketNetwork does not split computation
// across hosts. What it moves onto the wire is each remote party's
// *transport presence*: a psid daemon (net/daemon.h) owns the TCP endpoint
// for the parties it hosts, and every frame on a channel that touches a
// hosted party is relayed through that daemon and only enters the local
// mailbox when the daemon's echo arrives back over the socket. Kill the
// daemon and those channels genuinely stop: sends fail or time out,
// RecvValidated surfaces a clean ProtocolError, SessionOrchestrator's
// retry loop calls Reestablish() — seeded exponential backoff with jitter,
// re-dial, re-authenticate — and the PR-5 resume handshake then replays
// over the new connection. Channels between unhosted parties stay
// in-process, exactly like the simulator.
//
// Robustness machinery, all deterministic where it matters:
//   - length-prefixed framing (net/socket_util.h) over the existing CRC32
//     envelopes; a framing violation kills the connection, never the
//     process;
//   - per-daemon bounded send queues: kernel backpressure queues frames up
//     to a cap, beyond which the send fails cleanly;
//   - recv deadlines: WaitForPending pumps the event loop under the
//     RecvOptions deadline (default SocketTransportConfig::recv_timeout_ms);
//   - heartbeat probes with a dead-peer timeout while waiting;
//   - a pristine per-channel sent log serving RequestRetransmit, so frames
//     lost inside a killed daemon are recovered the same way the simulator
//     recovers dropped frames;
//   - an optional FaultInjector decorating the relay path, so one chaos
//     plan produces one fault schedule on either backend (docs/FAULTS.md).
//
// Metering note: RoundStats/TrafficReport count protocol messages only
// (SendFramed/Send and served retransmissions), identically to the
// simulator — transport chatter (hello, heartbeats, acks) is tallied
// separately in TransportStats. This is what keeps socket-run transcripts
// bitwise-comparable with simulator runs.

#ifndef PSI_NET_SOCKET_TRANSPORT_H_
#define PSI_NET_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "net/socket_util.h"

namespace psi {

/// \brief Tuning knobs for SocketNetwork. Defaults suit loopback tests;
/// a real deployment would stretch every timeout.
struct SocketTransportConfig {
  /// Seeds the backoff-jitter RNG: a given config and failure sequence
  /// reconnects on one deterministic schedule.
  uint64_t seed = 1;
  /// Default RecvValidated deadline when RecvOptions::deadline_ms == 0.
  uint64_t recv_timeout_ms = 2000;
  /// Bound on one TCP connect attempt.
  uint64_t connect_timeout_ms = 1000;
  /// Bound on one auth round trip (challenge -> hello -> ack).
  uint64_t handshake_timeout_ms = 1000;
  /// Heartbeat probe cadence while blocked in WaitForPending.
  uint64_t heartbeat_interval_ms = 100;
  /// Silence on a connection for this long while waiting declares the
  /// daemon dead (surfaced as a clean ProtocolError, never a hang).
  uint64_t heartbeat_timeout_ms = 1500;
  /// Reconnect attempts per Reestablish() call.
  int max_reconnect_attempts = 6;
  /// Backoff before reconnect attempt k sleeps
  /// min(backoff_base_ms << k, backoff_max_ms) plus seeded jitter drawn
  /// uniformly from that same range.
  uint64_t backoff_base_ms = 2;
  uint64_t backoff_max_ms = 250;
  /// Per-daemon bounded send queue: frames the kernel would not take yet.
  /// Overflow fails the send cleanly (graceful degradation, not OOM).
  size_t max_send_queue_frames = 256;
  /// Shared secret proving admission to a daemon. Never crosses the wire:
  /// the client answers a nonce challenge with sha256(token || nonce).
  PSI_SECRET std::string auth_token = "psid-dev-token";
  /// Session name declared in the hello; daemons key routing state by it.
  std::string session_name = "default";
};

/// \brief Transport-level counters (protocol traffic is metered by the
/// base Network exactly as on the simulator; these count the plumbing).
struct TransportStats {
  uint64_t connects = 0;           ///< Successful dial+auth handshakes.
  uint64_t reconnects = 0;         ///< Connects that replaced a dead link.
  uint64_t reconnect_attempts = 0; ///< Dial attempts including failures.
  uint64_t backoff_sleep_ms = 0;   ///< Total backoff slept, jitter included.
  uint64_t frames_relayed = 0;     ///< kData messages sent to daemons.
  uint64_t frames_echoed = 0;      ///< kData deliveries received back.
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeat_acks = 0;
  uint64_t dead_peers_detected = 0;
  uint64_t send_queue_peak = 0;    ///< High-water mark across all links.
  uint64_t wire_bytes_tx = 0;      ///< All transport bytes written.
  uint64_t wire_bytes_rx = 0;      ///< All transport bytes read.
  uint64_t exec_calls = 0;         ///< kExec requests sent to daemons.
  uint64_t exec_timeouts = 0;      ///< Calls abandoned at their deadline.
  uint64_t exec_stale_dropped = 0; ///< Late results of abandoned calls.
  uint64_t exec_bytes_tx = 0;      ///< Exec request bodies (pre-framing).
  uint64_t exec_bytes_rx = 0;      ///< Exec result bodies (pre-framing).
};

/// \brief Network implementation whose remote channels cross TCP loopback
/// through psid daemons. See the file comment for the model.
class SocketNetwork : public Network, public RemoteExecTransport {
 public:
  explicit SocketNetwork(SocketTransportConfig config);
  ~SocketNetwork() override;

  /// \brief Dials and authenticates to the daemon at `host:port`, which
  /// provides the wire presence of `parties`. Call after RegisterParty and
  /// before the first send. A party may be assigned to at most one daemon.
  [[nodiscard]] Status ConnectDaemon(const std::string& host, uint16_t port,
                                     std::vector<PartyId> parties);

  /// \brief Decorates the relay path with the shared fault pipeline: the
  /// chaos harness attaches the same FaultPlan it hands FaultyNetwork and
  /// gets the same seeded fault schedule over sockets.
  void AttachFaultInjector(FaultPlan plan);

  /// \brief Fault counters when an injector is attached, else nullptr.
  const FaultStats* fault_stats() const;

  /// \brief Releases fault-delayed frames, then opens the round as usual.
  void BeginRound(std::string label) override;

  /// \brief Recv that first pumps the event loop (bounded by the receive
  /// timeout) when nothing is pending on a daemon-routed channel, so raw
  /// Send/Recv protocols work unchanged over the asynchronous wire.
  [[nodiscard]] Result<std::vector<uint8_t>> Recv(PartyId to,
                                                  PartyId from) override;

  /// \brief Serves retransmissions from the pristine sent log (through the
  /// fault pipeline when an injector is attached), metered as fresh sends.
  /// Refused while the link carrying the channel is dead: a dead wire
  /// cannot retransmit — Reestablish() first.
  [[nodiscard]] Result<std::vector<uint8_t>> RequestRetransmit(
      PartyId to, PartyId from, uint64_t seq) override;

  /// \brief Repairs dead daemon links: seeded exponential backoff with
  /// jitter, bounded attempts, full re-authentication, resume-flagged
  /// hello. OK when every configured link is live again.
  [[nodiscard]] Status Reestablish() override;

  /// \brief Sends goodbyes and closes every link (idempotent; the
  /// destructor calls it too).
  void Shutdown();

  const TransportStats& transport_stats() const { return stats_; }

  /// \brief True when the link carrying `party` is currently usable.
  bool LinkAlive(PartyId party) const;

  /// \brief True when `party` is daemon-hosted (its daemon can be asked to
  /// run stage programs, live or not — a dead link reestablishes first).
  bool RemoteExecAvailable(PartyId party) const override;

  /// \brief Sends one kExec request to `party`'s daemon and pumps the
  /// event loop until the matching kExecResult arrives (envelope seq ==
  /// `expected_seq`), the link dies, or `deadline_ms` elapses. While the
  /// call is in flight the link's heartbeat dead-peer timer is suspended —
  /// a daemon busy inside a Paillier loop is slow, not dead; actual death
  /// still surfaces immediately through the socket (POLLHUP/ECONNRESET).
  /// Late results of abandoned calls are recognized by their stale seq and
  /// dropped, never misdelivered. An empty result body means the daemon
  /// has no execution engine. Exec traffic is transport-metered only; the
  /// protocol TrafficReport stays bitwise-identical to the simulator.
  [[nodiscard]] Result<std::vector<uint8_t>> RemoteCall(
      PartyId party, const std::vector<uint8_t>& request_frame,
      uint64_t deadline_ms, uint64_t expected_seq) override;

 protected:
  [[nodiscard]] Status Transmit(PartyId from, PartyId to,
                                std::vector<uint8_t> frame) override;
  [[nodiscard]] Status WaitForPending(PartyId to, PartyId from,
                                      uint64_t budget_ms) override;
  uint64_t DefaultRecvDeadlineMs() const override {
    return config_.recv_timeout_ms;
  }

 private:
  struct DaemonLink {
    std::string host;
    uint16_t port = 0;
    std::vector<PartyId> parties;
    int fd = -1;
    bool alive = false;
    bool ever_connected = false;
    TransportParser parser;
    std::deque<std::vector<uint8_t>> send_queue;
    uint64_t last_rx_ms = 0;
    uint64_t last_heartbeat_ms = 0;
    uint64_t last_pump_ms = 0;
    /// Result bodies of kExecResult messages awaiting pickup by RemoteCall.
    std::deque<std::vector<uint8_t>> exec_results;
    /// While MonotonicMs() is below this, rx-silence is expected (a stage
    /// program is running daemon-side) and must not trip dead-peer
    /// detection.
    uint64_t exec_grace_until_ms = 0;
  };

  static constexpr size_t kNoLink = static_cast<size_t>(-1);

  /// Link that must carry (from -> to): receiver's host wins, then
  /// sender's, else kNoLink (purely local channel).
  size_t LinkFor(PartyId from, PartyId to) const;

  /// Queues one transport message on a live link and flushes what the
  /// kernel will take. Fails cleanly on a dead link or queue overflow.
  [[nodiscard]] Status EnqueueMsg(DaemonLink* link,
                                  std::vector<uint8_t> packed);

  /// Relays one envelope frame as kData through `link`.
  [[nodiscard]] Status RelayFrame(DaemonLink* link, PartyId from, PartyId to,
                                  bool front,
                                  const std::vector<uint8_t>& frame);

  /// Drains readable transport messages on one link into the mailboxes,
  /// answering heartbeats and honoring goodbyes.
  [[nodiscard]] Status PumpLink(DaemonLink* link);

  /// One event-loop turn across all live links: flush queues, poll up to
  /// `slice_ms`, read, dispatch, heartbeat, declare dead peers.
  [[nodiscard]] Status PumpAll(uint64_t slice_ms);

  /// Dial + challenge/response auth + hello. On success the link is live.
  [[nodiscard]] Status DialAndAuth(DaemonLink* link, bool resume);

  void CloseLink(DaemonLink* link);
  void MarkDead(DaemonLink* link);

  SocketTransportConfig config_;
  Rng backoff_rng_;
  TransportStats stats_;
  std::vector<DaemonLink> links_;
  std::map<PartyId, size_t> route_;  // Hosted party -> links_ index.
  std::optional<FaultInjector> injector_;
  // Pristine frames for retransmission when no injector owns that job.
  std::map<std::pair<PartyId, PartyId>, std::vector<std::vector<uint8_t>>>
      sent_log_;
};

}  // namespace psi

#endif  // PSI_NET_SOCKET_TRANSPORT_H_
