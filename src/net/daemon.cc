#include "net/daemon.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace psi {

PsidDaemon::PsidDaemon(PsidConfig config)
    : config_(std::move(config)),
      nonce_rng_(config_.seed ^ 0xdaeb0000beefcafeULL) {}

PsidDaemon::~PsidDaemon() { CloseAll(); }

void PsidDaemon::CloseAll() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) close(conn.fd);
    conn.fd = -1;
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

Result<uint16_t> PsidDaemon::Listen(uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("Listen called twice");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    close(fd);
    return Status::Internal("setsockopt(SO_REUSEADDR): " +
                            std::string(std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, config_.bind_host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("unparseable bind host '" +
                                   config_.bind_host + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("bind to " + config_.bind_host + ":" +
                            std::to_string(port) + " failed: " + err);
  }
  if (listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("listen failed: " + err);
  }
  PSI_RETURN_NOT_OK(SetNonBlocking(fd));
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("getsockname failed: " + err);
  }
  if (pipe(stop_pipe_) < 0) {
    close(fd);
    return Status::Internal("pipe(): " + std::string(std::strerror(errno)));
  }
  PSI_RETURN_NOT_OK(SetNonBlocking(stop_pipe_[0]));
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return port_;
}

void PsidDaemon::Stop() {
  stop_requested_ = true;
  if (stop_pipe_[1] >= 0) {
    const uint8_t byte = 1;
    // A full pipe already guarantees wake-up; the result is irrelevant.
    (void)!write(stop_pipe_[1], &byte, 1);
  }
}

void PsidDaemon::CloseConn(Conn* conn) {
  if (conn->fd >= 0) {
    close(conn->fd);
    conn->fd = -1;
  }
  ++stats_.connections_closed;
}

void PsidDaemon::AcceptReady() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient; the next Poll retries.
    if (conns_.size() >= config_.max_connections ||
        !SetNonBlocking(fd).ok() || !SetNoDelay(fd).ok()) {
      close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.nonce.resize(kAuthNonceBytes);
    for (size_t i = 0; i < kAuthNonceBytes; i += 8) {
      const uint64_t word = nonce_rng_.NextU64();
      std::memcpy(conn.nonce.data() + i, &word,
                  std::min<size_t>(8, kAuthNonceBytes - i));
    }
    ++stats_.connections_accepted;
    std::vector<uint8_t> challenge = PackTransportMsg(
        TransportMsgKind::kChallenge, 0, conn.nonce);
    conns_.push_back(std::move(conn));
    if (!QueueOn(&conns_.back(), std::move(challenge))) {
      CloseConn(&conns_.back());
      conns_.pop_back();
    }
  }
}

bool PsidDaemon::QueueOn(Conn* conn, std::vector<uint8_t> packed) {
  if (conn->fd < 0) return false;
  if (conn->send_queue.size() >= config_.max_send_queue_frames) {
    ++stats_.protocol_violations;  // A reader this far behind is gone.
    return false;
  }
  conn->send_queue.push_back(std::move(packed));
  return FlushSendQueue(conn->fd, &conn->send_queue).ok();
}

bool PsidDaemon::HandleHello(Conn* conn, const TransportMsg& msg) {
  BinaryReader r(msg.body);
  std::string session;
  std::vector<uint8_t> digest;
  uint64_t num_parties = 0;
  if (!r.ReadString(&session).ok() || !r.ReadBytes(&digest).ok() ||
      !r.ReadCount(&num_parties, 1).ok()) {
    ++stats_.protocol_violations;
    return false;
  }
  std::vector<uint64_t> parties(num_parties);
  for (uint64_t& party : parties) {
    if (!r.ReadVarU64(&party).ok()) {
      ++stats_.protocol_violations;
      return false;
    }
  }
  Sha256 hasher;
  hasher.Update(config_.auth_token);
  hasher.Update(conn->nonce);
  const auto expected = hasher.Finish();
  const bool authed =
      digest.size() == expected.size() &&
      std::memcmp(digest.data(), expected.data(), expected.size()) == 0;
  if (!authed) {
    ++stats_.auth_failures;
    BinaryWriter nack;
    nack.WriteU8(0);
    nack.WriteString("bad auth token");
    (void)QueueOn(conn, PackTransportMsg(TransportMsgKind::kHelloAck, 0,
                                         nack.TakeBuffer()));
    return false;  // Drop after the nack flush attempt.
  }
  conn->admitted = true;
  conn->session = session;
  conn->parties = std::move(parties);
  if ((msg.flags & kTransportFlagResume) != 0) ++stats_.resumed_hellos;
  BinaryWriter ack;
  ack.WriteU8(1);
  ack.WriteString("ok");
  return QueueOn(conn, PackTransportMsg(TransportMsgKind::kHelloAck, 0,
                                        ack.TakeBuffer()));
}

bool PsidDaemon::HandleData(Conn* conn, const TransportMsg& msg) {
  BinaryReader r(msg.body);
  uint32_t from = 0;
  uint32_t to = 0;
  if (!r.ReadU32(&from).ok() || !r.ReadU32(&to).ok()) {
    ++stats_.protocol_violations;
    return false;
  }
  // Route to another connection of the same session that computes for the
  // receiver; with an SPMD client (one connection computing everything)
  // the frame hairpins back to its origin — the daemon is the wire the
  // frame must survive, not a different computer.
  Conn* target = nullptr;
  for (Conn& other : conns_) {
    if (&other == conn || other.fd < 0 || !other.admitted) continue;
    if (other.session != conn->session) continue;
    if (std::find(other.parties.begin(), other.parties.end(),
                  static_cast<uint64_t>(to)) != other.parties.end()) {
      target = &other;
      break;
    }
  }
  std::vector<uint8_t> packed =
      PackTransportMsg(TransportMsgKind::kData, msg.flags, msg.body);
  if (target != nullptr) {
    ++stats_.frames_forwarded;
    if (!QueueOn(target, std::move(packed))) CloseConn(target);
    return true;  // The sender is fine either way.
  }
  ++stats_.frames_hairpinned;
  return QueueOn(conn, std::move(packed));
}

bool PsidDaemon::HandleExec(Conn* conn, const TransportMsg& msg) {
  ++stats_.exec_requests;
  std::vector<uint8_t> result;
  if (config_.exec_handler) {
    result = config_.exec_handler(msg.body);
  } else {
    // No engine installed: answer with an empty body so the host degrades
    // that stage to local execution instead of waiting out a deadline.
    ++stats_.exec_no_engine;
  }
  ++stats_.exec_replies;
  return QueueOn(conn, PackTransportMsg(TransportMsgKind::kExecResult, 0,
                                        result));
}

bool PsidDaemon::ServiceConn(Conn* conn) {
  bool closed = false;
  if (!ReadAvailable(conn->fd, &conn->parser, &closed).ok()) return false;
  TransportMsg msg;
  for (;;) {
    auto produced = conn->parser.Next(&msg);
    if (!produced.ok()) {
      ++stats_.protocol_violations;
      return false;
    }
    if (!produced.ValueOrDie()) break;
    if (!conn->admitted) {
      if (msg.kind != TransportMsgKind::kHello) {
        ++stats_.protocol_violations;
        return false;
      }
      if (!HandleHello(conn, msg)) return false;
      continue;
    }
    switch (msg.kind) {
      case TransportMsgKind::kData:
        if (!HandleData(conn, msg)) return false;
        break;
      case TransportMsgKind::kHeartbeat:
        ++stats_.heartbeats_answered;
        if (!QueueOn(conn, PackTransportMsg(TransportMsgKind::kHeartbeatAck,
                                            0, {}))) {
          return false;
        }
        break;
      case TransportMsgKind::kHeartbeatAck:
        break;  // Answer to a daemon probe; nothing to do.
      case TransportMsgKind::kExec:
        if (!HandleExec(conn, msg)) return false;
        break;
      case TransportMsgKind::kGoodbye:
        return false;  // Orderly close.
      default:
        ++stats_.protocol_violations;
        return false;
    }
  }
  return !closed;
}

Status PsidDaemon::Poll(uint64_t slice_ms) {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Poll before Listen");
  }
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 2);
  pollfd lp;
  lp.fd = listen_fd_;
  lp.events = POLLIN;
  lp.revents = 0;
  fds.push_back(lp);
  pollfd sp;
  sp.fd = stop_pipe_[0];
  sp.events = POLLIN;
  sp.revents = 0;
  fds.push_back(sp);
  for (Conn& conn : conns_) {
    pollfd p;
    p.fd = conn.fd;
    p.events = POLLIN;
    if (!conn.send_queue.empty()) p.events |= POLLOUT;
    p.revents = 0;
    fds.push_back(p);
  }
  const int ready =
      poll(fds.data(), fds.size(), static_cast<int>(std::min<uint64_t>(
                                       slice_ms, 1000)));
  if (ready < 0 && errno != EINTR) {
    return Status::Internal("daemon poll failed: " +
                            std::string(std::strerror(errno)));
  }
  // Connections accepted this turn have no pollfd yet; service them next
  // turn, and only walk the ones `fds` was built from.
  const size_t polled = conns_.size();
  if ((fds[0].revents & POLLIN) != 0) AcceptReady();
  for (size_t i = 0; i < polled; ++i) {
    Conn& conn = conns_[i];
    const pollfd& p = fds[i + 2];
    if (conn.fd < 0) continue;
    bool keep = true;
    if ((p.revents & (POLLERR | POLLNVAL)) != 0) keep = false;
    if (keep && (p.revents & POLLOUT) != 0) {
      keep = FlushSendQueue(conn.fd, &conn.send_queue).ok();
    }
    if (keep && (p.revents & (POLLIN | POLLHUP)) != 0) {
      keep = ServiceConn(&conn);
    }
    if (!keep) {
      // Give a pending nack/goodbye one best-effort flush before closing.
      const Status flushed = FlushSendQueue(conn.fd, &conn.send_queue);
      (void)flushed;
      CloseConn(&conn);
    }
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return c.fd < 0; }),
               conns_.end());
  return Status::OK();
}

Status PsidDaemon::Run() {
  while (!stop_requested_) {
    PSI_RETURN_NOT_OK(Poll(100));
    if (stop_pipe_[0] >= 0) {
      uint8_t drain[16];
      while (read(stop_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
  }
  Drain(config_.drain_grace_ms);
  return Status::OK();
}

void PsidDaemon::Drain(uint64_t grace_ms) {
  // Stop admitting anyone new, say goodbye on every live connection, and
  // give the queued frames (goodbyes included) a bounded window to leave.
  // A zero grace is an abrupt stop: no goodbyes, connections just die, so
  // clients see exactly what a crash looks like.
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (grace_ms > 0) {
    for (Conn& conn : conns_) {
      if (conn.fd < 0 || !conn.admitted) continue;
      (void)QueueOn(&conn,
                    PackTransportMsg(TransportMsgKind::kGoodbye, 0, {}));
    }
  }
  const uint64_t deadline = MonotonicMs() + grace_ms;
  for (;;) {
    bool pending = false;
    for (Conn& conn : conns_) {
      if (conn.fd < 0) continue;
      if (!FlushSendQueue(conn.fd, &conn.send_queue).ok()) {
        CloseConn(&conn);
        continue;
      }
      if (!conn.send_queue.empty()) pending = true;
    }
    if (!pending || MonotonicMs() >= deadline) break;
    std::vector<pollfd> fds;
    for (Conn& conn : conns_) {
      if (conn.fd < 0 || conn.send_queue.empty()) continue;
      pollfd p;
      p.fd = conn.fd;
      p.events = POLLOUT;
      p.revents = 0;
      fds.push_back(p);
    }
    if (fds.empty()) break;
    (void)poll(fds.data(), fds.size(), 10);
  }
  for (Conn& conn : conns_) {
    if (conn.fd < 0) continue;
    CloseConn(&conn);
    ++stats_.drained_connections;
  }
  conns_.clear();
}

std::vector<std::string> PsidDaemon::active_sessions() const {
  std::vector<std::string> sessions;
  for (const Conn& conn : conns_) {
    if (!conn.admitted) continue;
    if (std::find(sessions.begin(), sessions.end(), conn.session) ==
        sessions.end()) {
      sessions.push_back(conn.session);
    }
  }
  return sessions;
}

}  // namespace psi
