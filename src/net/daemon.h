// psid: the party-hosting daemon of the socket transport.
//
// A PsidDaemon owns the TCP endpoint for one side of the wire: it accepts
// client connections, admits them with a nonce challenge (the shared token
// never crosses the wire; the client answers sha256(token || nonce)), and
// then routes kData frames between the connections of each named session.
// The repo's drivers are SPMD, so the common shape is one client
// connection per session whose frames hairpin through the daemon — the
// daemon is the hosted parties' transport presence, and SIGKILLing it
// genuinely severs those channels mid-protocol, which is exactly what the
// recovery tests exercise (tests/integration/socket_daemon_test.cc). It
// serves any number of concurrent sessions, keyed by the session name
// declared in the hello.
//
// The daemon is single-threaded: one poll() loop services the listener,
// the stop pipe, and every connection, with per-connection parsers and
// bounded send queues. Run() blocks until Stop() (thread-safe via the
// self-pipe) — the psid binary (tools/psid.cc) and forked test daemons
// use it; in-process tests drive Poll() directly. Lifecycle:
//
//   PsidDaemon d(config);
//   auto port = d.Listen(0);          // 0 = pick an ephemeral port
//   d.Run();                          // serve until Stop() or fatal error
//
// A restarted daemon (same port, fresh process) accepts resume-flagged
// hellos from clients whose previous connection died with the old
// process; it holds no protocol state, so nothing needs recovering on its
// side — clients resynchronize channels through the PR-5 session resume
// handshake.

#ifndef PSI_NET_DAEMON_H_
#define PSI_NET_DAEMON_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"
#include "net/socket_util.h"

namespace psi {

/// \brief Stage-execution hook: input is the body of one kExec transport
/// message (a sealed ProtocolId::kExec request envelope), the return value
/// is the full kExecResult body (a sealed result envelope). The daemon
/// stays codec-agnostic — it shuttles bytes; mpc/remote_exec builds the
/// real engine and tools/psid.cc installs it.
using PsidExecHandler =
    std::function<std::vector<uint8_t>(const std::vector<uint8_t>& request)>;

/// \brief Daemon configuration.
struct PsidConfig {
  /// Seeds challenge-nonce generation (deterministic for tests).
  uint64_t seed = 7;
  /// Shared admission secret; must match the clients' token.
  PSI_SECRET std::string auth_token = "psid-dev-token";
  /// Numeric IPv4 address to bind (loopback by default).
  std::string bind_host = "127.0.0.1";
  /// Hard cap on simultaneously-open client connections.
  size_t max_connections = 32;
  /// Per-connection bounded send queue; overflow drops the connection.
  size_t max_send_queue_frames = 1024;
  /// Names of the parties this daemon hosts (informational, for logs and
  /// the psid binary's status output).
  std::vector<std::string> hosted_parties;
  /// Stage-execution engine. When unset, kExec requests are answered with
  /// an empty kExecResult body ("no engine here"), which the host treats as
  /// a signal to degrade that stage to local execution — never a violation,
  /// never silence.
  PsidExecHandler exec_handler;
  /// Bound on the graceful-shutdown drain: how long Run() keeps flushing
  /// queued frames and goodbyes after Stop() before closing everything.
  /// Zero disables the drain entirely — connections are dropped without a
  /// goodbye, so clients observe a dead peer, exactly like a crash (the
  /// recovery benches use this to stage a daemon death in-process).
  uint64_t drain_grace_ms = 200;
};

/// \brief Observable daemon counters (single-threaded; read between
/// Poll() calls or after Stop()).
struct PsidStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t auth_failures = 0;
  uint64_t resumed_hellos = 0;      ///< Reconnects after a died connection.
  uint64_t frames_hairpinned = 0;   ///< kData echoed to its origin.
  uint64_t frames_forwarded = 0;    ///< kData routed to a peer connection.
  uint64_t heartbeats_answered = 0;
  uint64_t protocol_violations = 0; ///< Connections dropped for bad frames.
  uint64_t exec_requests = 0;       ///< kExec messages received.
  uint64_t exec_replies = 0;        ///< kExecResult messages produced.
  uint64_t exec_no_engine = 0;      ///< Requests answered without a handler.
  uint64_t drained_connections = 0; ///< Connections closed by a drain.
};

/// \brief Single-threaded party-hosting daemon. See the file comment.
class PsidDaemon {
 public:
  explicit PsidDaemon(PsidConfig config);
  ~PsidDaemon();
  PsidDaemon(const PsidDaemon&) = delete;
  PsidDaemon& operator=(const PsidDaemon&) = delete;

  /// \brief Binds and listens on `port` (0 picks an ephemeral port).
  /// Returns the bound port. SO_REUSEADDR is set so a restarted daemon can
  /// reclaim the port its killed predecessor held.
  [[nodiscard]] Result<uint16_t> Listen(uint16_t port);

  /// \brief The bound port (0 before Listen succeeds).
  uint16_t port() const { return port_; }

  /// \brief One event-loop turn, blocking at most `slice_ms`: accept,
  /// read, route, flush, reap. In-process tests pump this directly.
  [[nodiscard]] Status Poll(uint64_t slice_ms);

  /// \brief Serves until Stop() is called or the listener dies. The psid
  /// binary and forked test daemons live here.
  [[nodiscard]] Status Run();

  /// \brief Requests Run() to return; safe from another thread (and from
  /// the same thread between Poll() calls).
  void Stop();

  /// \brief Graceful shutdown: sends a goodbye on every admitted
  /// connection, flushes queued frames for up to `grace_ms`, then closes
  /// everything. Run() calls this (with the configured grace) after Stop()
  /// so a SIGTERM'd psid says farewell instead of vanishing mid-frame.
  void Drain(uint64_t grace_ms);

  /// \brief Closes every fd the daemon holds. The parent side of a fork
  /// calls this so only the child owns the sockets.
  void CloseAll();

  /// \brief Number of currently-open client connections.
  size_t num_connections() const { return conns_.size(); }

  /// \brief Session names with at least one admitted connection.
  std::vector<std::string> active_sessions() const;

  const PsidStats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    bool admitted = false;
    std::vector<uint8_t> nonce;
    std::string session;
    std::vector<uint64_t> parties;  ///< Party ids the client computes for.
    TransportParser parser;
    std::deque<std::vector<uint8_t>> send_queue;
  };

  void AcceptReady();
  /// Handles every parsed message on `conn`; false means drop it.
  [[nodiscard]] bool ServiceConn(Conn* conn);
  [[nodiscard]] bool HandleHello(Conn* conn, const TransportMsg& msg);
  [[nodiscard]] bool HandleData(Conn* conn, const TransportMsg& msg);
  [[nodiscard]] bool HandleExec(Conn* conn, const TransportMsg& msg);
  /// Queues a packed message; false when the connection must drop.
  [[nodiscard]] bool QueueOn(Conn* conn, std::vector<uint8_t> packed);
  void CloseConn(Conn* conn);

  PsidConfig config_;
  Rng nonce_rng_;
  PsidStats stats_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int stop_pipe_[2] = {-1, -1};
  bool stop_requested_ = false;
  std::vector<Conn> conns_;
};

}  // namespace psi

#endif  // PSI_NET_DAEMON_H_
