#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "net/envelope.h"

namespace psi {

namespace {

/// Smallest pump slice: keeps the loop responsive without busy-spinning.
constexpr uint64_t kMaxPollSliceMs = 50;

std::vector<uint8_t> PackHeartbeat() {
  return PackTransportMsg(TransportMsgKind::kHeartbeat, 0, {});
}

}  // namespace

SocketNetwork::SocketNetwork(SocketTransportConfig config)
    : config_(std::move(config)),
      backoff_rng_(config_.seed ^ 0xb0ccf00dcafef00dULL) {}

SocketNetwork::~SocketNetwork() { Shutdown(); }

void SocketNetwork::AttachFaultInjector(FaultPlan plan) {
  injector_.emplace(std::move(plan));
}

const FaultStats* SocketNetwork::fault_stats() const {
  return injector_.has_value() ? &injector_->stats() : nullptr;
}

bool SocketNetwork::LinkAlive(PartyId party) const {
  auto it = route_.find(party);
  return it != route_.end() && links_[it->second].alive;
}

size_t SocketNetwork::LinkFor(PartyId from, PartyId to) const {
  auto it = route_.find(to);  // The receiver's host is the delivery point.
  if (it != route_.end()) return it->second;
  it = route_.find(from);  // Else egress through the sender's host.
  if (it != route_.end()) return it->second;
  return kNoLink;
}

Status SocketNetwork::ConnectDaemon(const std::string& host, uint16_t port,
                                    std::vector<PartyId> parties) {
  for (PartyId p : parties) {
    if (!ValidParty(p)) {
      return Status::InvalidArgument(
          "ConnectDaemon: unknown party id " + std::to_string(p) +
          " (register parties first)");
    }
    if (route_.count(p) != 0) {
      return Status::InvalidArgument("ConnectDaemon: " + party_name(p) +
                                     " is already hosted by another daemon");
    }
  }
  links_.push_back(DaemonLink{});
  DaemonLink& link = links_.back();
  link.host = host;
  link.port = port;
  link.parties = parties;
  Status dialed = DialAndAuth(&link, /*resume=*/false);
  if (!dialed.ok()) {
    links_.pop_back();
    return dialed;
  }
  const size_t index = links_.size() - 1;
  for (PartyId p : parties) route_[p] = index;
  return Status::OK();
}

void SocketNetwork::CloseLink(DaemonLink* link) {
  if (link->fd >= 0) {
    close(link->fd);
    link->fd = -1;
  }
  link->alive = false;
}

void SocketNetwork::MarkDead(DaemonLink* link) {
  if (link->alive) ++stats_.dead_peers_detected;
  CloseLink(link);
  // Frames queued for the dead connection are gone with it; the pristine
  // sent log serves any that mattered via RequestRetransmit. Exec results
  // of a dead daemon are meaningless — the host re-asks after reconnect.
  link->send_queue.clear();
  link->exec_results.clear();
  link->exec_grace_until_ms = 0;
}

void SocketNetwork::Shutdown() {
  for (DaemonLink& link : links_) {
    if (link.alive && link.fd >= 0) {
      link.send_queue.push_back(
          PackTransportMsg(TransportMsgKind::kGoodbye, 0, {}));
      const Status flushed = FlushSendQueue(link.fd, &link.send_queue);
      (void)flushed;  // Best-effort farewell; the fd closes either way.
    }
    CloseLink(&link);
  }
}

Status SocketNetwork::EnqueueMsg(DaemonLink* link,
                                 std::vector<uint8_t> packed) {
  if (!link->alive) {
    return Status::ProtocolError(
        "daemon link " + link->host + ":" + std::to_string(link->port) +
        " is down in round '" + CurrentRoundLabel() + "'");
  }
  if (link->send_queue.size() >= config_.max_send_queue_frames) {
    MarkDead(link);
    return Status::ProtocolError(
        "send queue overflow (" +
        std::to_string(config_.max_send_queue_frames) + " frames) to " +
        link->host + ":" + std::to_string(link->port) +
        "; declaring the daemon dead");
  }
  stats_.wire_bytes_tx += packed.size();
  link->send_queue.push_back(std::move(packed));
  stats_.send_queue_peak =
      std::max<uint64_t>(stats_.send_queue_peak, link->send_queue.size());
  Status flushed = FlushSendQueue(link->fd, &link->send_queue);
  if (!flushed.ok()) {
    MarkDead(link);
    return Status::ProtocolError("daemon link " + link->host + ":" +
                                 std::to_string(link->port) +
                                 " failed: " + flushed.message());
  }
  return Status::OK();
}

Status SocketNetwork::RelayFrame(DaemonLink* link, PartyId from, PartyId to,
                                 bool front,
                                 const std::vector<uint8_t>& frame) {
  BinaryWriter body;
  body.Reserve(8 + frame.size());
  body.WriteU32(from);
  body.WriteU32(to);
  body.WriteRaw(frame.data(), frame.size());
  ++stats_.frames_relayed;
  return EnqueueMsg(link,
                    PackTransportMsg(TransportMsgKind::kData,
                                     front ? kTransportFlagFront : 0,
                                     body.TakeBuffer()));
}

Status SocketNetwork::Transmit(PartyId from, PartyId to,
                               std::vector<uint8_t> frame) {
  bool front = false;
  int copies = 1;
  if (injector_.has_value()) {
    FaultInjector::Verdict verdict =
        injector_->OnTransmit(RoundIndex(), from, to, std::move(frame));
    switch (verdict.action) {
      case FaultInjector::Action::kSwallow:
        return Status::OK();
      case FaultInjector::Action::kDeliverTwice:
        copies = 2;
        break;
      case FaultInjector::Action::kDeliverFront:
        front = true;
        break;
      case FaultInjector::Action::kDeliver:
        break;
    }
    frame = std::move(verdict.frame);
  } else {
    sent_log_[{from, to}].push_back(frame);  // Pristine retransmit copy.
  }
  const size_t index = LinkFor(from, to);
  for (int copy = 0; copy < copies; ++copy) {
    const bool last = copy == copies - 1;
    if (index == kNoLink) {
      // Neither endpoint is daemon-hosted: the channel stays in-process.
      std::vector<uint8_t> delivered = last ? std::move(frame) : frame;
      Deliver(from, to, std::move(delivered), front);
    } else {
      PSI_RETURN_NOT_OK(RelayFrame(&links_[index], from, to, front, frame));
    }
  }
  return Status::OK();
}

void SocketNetwork::BeginRound(std::string label) {
  if (injector_.has_value()) {
    // Delayed frames surface at the round boundary, before any of the
    // round's own traffic — locally, exactly like the simulator, so the
    // release point does not depend on daemon scheduling.
    for (auto& [key, frame] : injector_->TakeDelayed()) {
      Deliver(key.first, key.second, std::move(frame));
    }
  }
  Network::BeginRound(std::move(label));
}

Status SocketNetwork::PumpLink(DaemonLink* link) {
  bool closed = false;
  size_t got = 0;
  Status read = ReadAvailable(link->fd, &link->parser, &closed, &got);
  if (!read.ok()) {
    MarkDead(link);
    return read;
  }
  if (got > 0) {
    stats_.wire_bytes_rx += got;
    link->last_rx_ms = MonotonicMs();
  }
  TransportMsg msg;
  for (;;) {
    auto produced = link->parser.Next(&msg);
    if (!produced.ok()) {
      MarkDead(link);
      return produced.status();
    }
    if (!produced.ValueOrDie()) break;
    switch (msg.kind) {
      case TransportMsgKind::kData: {
        BinaryReader r(msg.body);
        uint32_t from = 0;
        uint32_t to = 0;
        PSI_RETURN_NOT_OK(r.ReadU32(&from));
        PSI_RETURN_NOT_OK(r.ReadU32(&to));
        if (!ValidParty(from) || !ValidParty(to)) {
          MarkDead(link);
          return Status::ProtocolError(
              "daemon echoed a frame for unknown parties " +
              std::to_string(from) + " -> " + std::to_string(to));
        }
        std::vector<uint8_t> frame(msg.body.begin() + 8, msg.body.end());
        ++stats_.frames_echoed;
        Deliver(from, to, std::move(frame),
                (msg.flags & kTransportFlagFront) != 0);
        break;
      }
      case TransportMsgKind::kHeartbeatAck:
        ++stats_.heartbeat_acks;
        break;
      case TransportMsgKind::kExecResult:
        link->exec_results.push_back(std::move(msg.body));
        break;
      case TransportMsgKind::kHeartbeat:
        PSI_RETURN_NOT_OK(EnqueueMsg(
            link, PackTransportMsg(TransportMsgKind::kHeartbeatAck, 0, {})));
        break;
      case TransportMsgKind::kGoodbye:
        CloseLink(link);  // Orderly: not a dead-peer event.
        return Status::OK();
      default:
        MarkDead(link);
        return Status::ProtocolError(
            std::string("unexpected transport message '") +
            TransportMsgKindToString(msg.kind) +
            "' outside the handshake");
    }
  }
  if (closed) MarkDead(link);
  return Status::OK();
}

Status SocketNetwork::PumpAll(uint64_t slice_ms) {
  std::vector<pollfd> fds;
  std::vector<size_t> owner;
  const uint64_t now = MonotonicMs();
  for (size_t i = 0; i < links_.size(); ++i) {
    DaemonLink& link = links_[i];
    if (!link.alive) continue;
    // Silence only counts while the loop is actually listening: after a
    // compute phase longer than the timeout, nothing was pumped, so the
    // accumulated quiet proves nothing about the peer — restart the
    // liveness window instead of declaring a spurious death.
    if (now - link.last_pump_ms >= config_.heartbeat_timeout_ms) {
      link.last_rx_ms = now;
    }
    link.last_pump_ms = now;
    // A remote stage program is running on this daemon: rx-silence is the
    // expected shape of a long Paillier loop, so keep the liveness window
    // pinned open until the call's own deadline. Actual death (SIGKILL)
    // still surfaces instantly below via POLLERR/POLLHUP or a read error.
    if (link.exec_grace_until_ms != 0) {
      if (now < link.exec_grace_until_ms) {
        link.last_rx_ms = now;
      } else {
        link.exec_grace_until_ms = 0;
      }
    }
    // Probe liveness while blocked; silence past the timeout is a death.
    if (now - link.last_heartbeat_ms >= config_.heartbeat_interval_ms) {
      link.last_heartbeat_ms = now;
      ++stats_.heartbeats_sent;
      Status sent = EnqueueMsg(&link, PackHeartbeat());
      if (!sent.ok()) continue;  // MarkDead already ran.
    }
    if (now - link.last_rx_ms >= config_.heartbeat_timeout_ms) {
      MarkDead(&link);
      continue;
    }
    pollfd p;
    p.fd = link.fd;
    p.events = POLLIN;
    if (!link.send_queue.empty()) p.events |= POLLOUT;
    p.revents = 0;
    fds.push_back(p);
    owner.push_back(i);
  }
  if (fds.empty()) return Status::OK();
  const int timeout =
      static_cast<int>(std::min<uint64_t>(slice_ms, kMaxPollSliceMs));
  const int ready = poll(fds.data(), fds.size(), timeout);
  if (ready < 0 && errno != EINTR) {
    return Status::Internal("poll failed: " +
                            std::string(std::strerror(errno)));
  }
  for (size_t k = 0; k < fds.size(); ++k) {
    DaemonLink& link = links_[owner[k]];
    if (!link.alive) continue;
    if ((fds[k].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (fds[k].revents & POLLIN) == 0) {
      MarkDead(&link);
      continue;
    }
    if ((fds[k].revents & POLLOUT) != 0) {
      Status flushed = FlushSendQueue(link.fd, &link.send_queue);
      if (!flushed.ok()) {
        MarkDead(&link);
        continue;
      }
    }
    if ((fds[k].revents & (POLLIN | POLLHUP)) != 0) {
      const Status pumped = PumpLink(&link);
      (void)pumped;  // Failures mark the link dead; callers observe the
                     // aliveness, WaitForPending reports the status.
    }
  }
  return Status::OK();
}

Status SocketNetwork::WaitForPending(PartyId to, PartyId from,
                                     uint64_t budget_ms) {
  const size_t index = LinkFor(from, to);
  if (index == kNoLink) return Status::OK();  // Local channel: no wire.
  const uint64_t deadline = MonotonicMs() + budget_ms;
  for (;;) {
    if (HasPending(to, from)) return Status::OK();
    if (!links_[index].alive) {
      return Status::ProtocolError(
          "daemon link " + links_[index].host + ":" +
          std::to_string(links_[index].port) + " carrying " +
          DescribeChannel(from, to) + " is down");
    }
    const uint64_t now = MonotonicMs();
    if (budget_ms == 0 || now >= deadline) return Status::OK();
    PSI_RETURN_NOT_OK(PumpAll(deadline - now));
  }
}

Result<std::vector<uint8_t>> SocketNetwork::Recv(PartyId to, PartyId from) {
  if (!HasPending(to, from)) {
    // The frame may still be in flight through a daemon; give the event
    // loop the receive window before reporting the empty mailbox.
    PSI_RETURN_NOT_OK(WaitForPending(to, from, config_.recv_timeout_ms));
  }
  return Network::Recv(to, from);
}

Result<std::vector<uint8_t>> SocketNetwork::RequestRetransmit(PartyId to,
                                                              PartyId from,
                                                              uint64_t seq) {
  const size_t index = LinkFor(from, to);
  if (index != kNoLink && !links_[index].alive) {
    return Status::FailedPrecondition(
        "retransmit refused: daemon link " + links_[index].host + ":" +
        std::to_string(links_[index].port) + " carrying " +
        DescribeChannel(from, to) + " is down; reestablish first");
  }
  if (injector_.has_value()) {
    FaultInjector::Retransmission served = injector_->OnRetransmit(
        RoundIndex(), to, from, seq, DescribeChannel(from, to),
        party_name(from));
    if (served.wire_bytes > 0) {
      MeterSend(from, served.wire_bytes, served.payload_bytes);
    }
    return std::move(served.result);
  }
  auto it = sent_log_.find({from, to});
  if (it != sent_log_.end()) {
    for (const auto& frame : it->second) {
      auto peeked = PeekEnvelopeSeq(frame);
      if (!peeked.ok() || peeked.ValueOrDie() != seq) continue;
      // Served directly from the pristine log (the copy a real daemon
      // restart would have lost in flight), metered as a fresh send.
      MeterSend(from, frame.size(), frame.size() - kEnvelopeOverheadBytes);
      return frame;
    }
  }
  return Status::FailedPrecondition(
      "retransmit refused: no frame with seq " + std::to_string(seq) +
      " was ever sent on " + DescribeChannel(from, to));
}

Status SocketNetwork::DialAndAuth(DaemonLink* link, bool resume) {
  CloseLink(link);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  Status setup = SetNonBlocking(fd);
  if (!setup.ok()) {
    close(fd);
    return setup;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(link->port);
  if (inet_pton(AF_INET, link->host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("unparseable daemon host '" + link->host +
                                   "' (numeric IPv4 expected)");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::ProtocolError("connect to " + link->host + ":" +
                                 std::to_string(link->port) +
                                 " failed: " + err);
  }
  pollfd p;
  p.fd = fd;
  p.events = POLLOUT;
  p.revents = 0;
  if (poll(&p, 1, static_cast<int>(config_.connect_timeout_ms)) <= 0) {
    close(fd);
    return Status::ProtocolError(
        "connect to " + link->host + ":" + std::to_string(link->port) +
        " timed out after " + std::to_string(config_.connect_timeout_ms) +
        " ms");
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
      so_error != 0) {
    close(fd);
    return Status::ProtocolError(
        "connect to " + link->host + ":" + std::to_string(link->port) +
        " failed: " + std::strerror(so_error != 0 ? so_error : errno));
  }
  Status nodelay = SetNoDelay(fd);
  if (!nodelay.ok()) {
    close(fd);
    return nodelay;
  }

  // --- Challenge/response admission under the handshake budget. ---
  TransportParser parser;
  const uint64_t deadline = MonotonicMs() + config_.handshake_timeout_ms;
  auto await = [&](TransportMsgKind want, TransportMsg* msg) -> Status {
    for (;;) {
      auto produced = parser.Next(msg);
      PSI_RETURN_NOT_OK(produced.status());
      if (produced.ValueOrDie()) {
        if (msg->kind != want) {
          return Status::ProtocolError(
              std::string("handshake expected '") +
              TransportMsgKindToString(want) + "' but daemon sent '" +
              TransportMsgKindToString(msg->kind) + "'");
        }
        return Status::OK();
      }
      const uint64_t now = MonotonicMs();
      if (now >= deadline) {
        return Status::ProtocolError(
            "handshake with " + link->host + ":" +
            std::to_string(link->port) + " timed out after " +
            std::to_string(config_.handshake_timeout_ms) + " ms");
      }
      pollfd hp;
      hp.fd = fd;
      hp.events = POLLIN;
      hp.revents = 0;
      (void)poll(&hp, 1, static_cast<int>(deadline - now));
      bool closed = false;
      size_t got = 0;
      PSI_RETURN_NOT_OK(ReadAvailable(fd, &parser, &closed, &got));
      stats_.wire_bytes_rx += got;
      if (closed && parser.buffered() < kTransportHeaderBytes) {
        return Status::ProtocolError("daemon " + link->host + ":" +
                                     std::to_string(link->port) +
                                     " hung up during the handshake");
      }
    }
  };
  auto send_msg = [&](std::vector<uint8_t> packed) -> Status {
    stats_.wire_bytes_tx += packed.size();
    std::deque<std::vector<uint8_t>> q;
    q.push_back(std::move(packed));
    while (!q.empty()) {
      PSI_RETURN_NOT_OK(FlushSendQueue(fd, &q));
      if (q.empty()) break;
      if (MonotonicMs() >= deadline) {
        return Status::ProtocolError("handshake send stalled");
      }
      pollfd wp;
      wp.fd = fd;
      wp.events = POLLOUT;
      wp.revents = 0;
      (void)poll(&wp, 1, 10);
    }
    return Status::OK();
  };

  TransportMsg msg;
  Status handshake = await(TransportMsgKind::kChallenge, &msg);
  if (handshake.ok() && msg.body.size() != kAuthNonceBytes) {
    handshake = Status::ProtocolError("malformed challenge nonce of " +
                                      std::to_string(msg.body.size()) +
                                      " bytes");
  }
  if (handshake.ok()) {
    // The token itself never crosses the wire: prove possession with
    // sha256(token || nonce) against the daemon's fresh nonce.
    Sha256 hasher;
    hasher.Update(config_.auth_token);
    hasher.Update(msg.body);
    const auto digest = hasher.Finish();
    BinaryWriter hello;
    hello.WriteString(config_.session_name);
    hello.WriteBytes(std::vector<uint8_t>(digest.begin(), digest.end()));
    hello.WriteVarU64(link->parties.size());
    for (PartyId party : link->parties) hello.WriteVarU64(party);
    handshake = send_msg(PackTransportMsg(TransportMsgKind::kHello,
                                          resume ? kTransportFlagResume : 0,
                                          hello.TakeBuffer()));
  }
  if (handshake.ok()) {
    handshake = await(TransportMsgKind::kHelloAck, &msg);
  }
  if (handshake.ok()) {
    BinaryReader ack(msg.body);
    uint8_t accepted = 0;
    std::string reason;
    handshake = ack.ReadU8(&accepted);
    if (handshake.ok()) handshake = ack.ReadString(&reason);
    if (handshake.ok() && accepted == 0) {
      handshake = Status::ProtocolError("daemon " + link->host + ":" +
                                        std::to_string(link->port) +
                                        " rejected the session: " + reason);
    }
  }
  if (!handshake.ok()) {
    close(fd);
    return handshake;
  }

  link->fd = fd;
  link->alive = true;
  link->ever_connected = true;
  link->parser = TransportParser();  // Fresh stream, fresh framing.
  link->send_queue.clear();
  link->last_rx_ms = MonotonicMs();
  link->last_heartbeat_ms = link->last_rx_ms;
  link->last_pump_ms = link->last_rx_ms;
  link->exec_results.clear();
  link->exec_grace_until_ms = 0;
  ++stats_.connects;
  return Status::OK();
}

bool SocketNetwork::RemoteExecAvailable(PartyId party) const {
  return route_.count(party) != 0;
}

Result<std::vector<uint8_t>> SocketNetwork::RemoteCall(
    PartyId party, const std::vector<uint8_t>& request_frame,
    uint64_t deadline_ms, uint64_t expected_seq) {
  auto it = route_.find(party);
  if (it == route_.end()) {
    return Status::FailedPrecondition("RemoteCall: " + party_name(party) +
                                      " is not daemon-hosted");
  }
  DaemonLink& link = links_[it->second];
  if (!link.alive) {
    return Status::ProtocolError(
        "RemoteCall: daemon link " + link.host + ":" +
        std::to_string(link.port) + " hosting " + party_name(party) +
        " is down; reestablish first");
  }
  ++stats_.exec_calls;
  stats_.exec_bytes_tx += request_frame.size();
  const uint64_t deadline = MonotonicMs() + deadline_ms;
  link.exec_grace_until_ms = deadline;
  Status sent = EnqueueMsg(
      &link, PackTransportMsg(TransportMsgKind::kExec, 0, request_frame));
  if (!sent.ok()) {
    link.exec_grace_until_ms = 0;
    return sent;
  }
  for (;;) {
    while (!link.exec_results.empty()) {
      std::vector<uint8_t> body = std::move(link.exec_results.front());
      link.exec_results.pop_front();
      stats_.exec_bytes_rx += body.size();
      if (body.empty()) {
        // The daemon has no execution engine; the caller degrades.
        link.exec_grace_until_ms = 0;
        return body;
      }
      auto seq = PeekEnvelopeSeq(body);
      if (!seq.ok() || seq.ValueOrDie() != expected_seq) {
        // A late answer to a call we already abandoned. Dropping it here —
        // instead of letting it masquerade as this stage's result — is
        // what makes retry-after-timeout safe.
        ++stats_.exec_stale_dropped;
        continue;
      }
      link.exec_grace_until_ms = 0;
      return body;
    }
    if (!link.alive) {
      return Status::ProtocolError(
          "daemon link " + link.host + ":" + std::to_string(link.port) +
          " hosting " + party_name(party) +
          " died during remote stage execution");
    }
    const uint64_t now = MonotonicMs();
    if (now >= deadline) {
      ++stats_.exec_timeouts;
      link.exec_grace_until_ms = 0;
      return Status::ProtocolError(
          "remote stage call to " + party_name(party) + " via " + link.host +
          ":" + std::to_string(link.port) + " timed out after " +
          std::to_string(deadline_ms) + " ms");
    }
    PSI_RETURN_NOT_OK(PumpAll(deadline - now));
  }
}

Status SocketNetwork::Reestablish() {
  for (DaemonLink& link : links_) {
    if (link.alive) continue;
    Status last = Status::ProtocolError("no attempt made");
    bool restored = false;
    for (int attempt = 0; attempt < config_.max_reconnect_attempts;
         ++attempt) {
      if (attempt > 0) {
        // Deterministic seeded exponential backoff with jitter: attempt k
        // sleeps min(base << k, max) plus a seeded draw in that same range.
        const uint64_t exp =
            config_.backoff_base_ms
            << std::min(attempt, 20);  // Shift guard; attempts are small.
        const uint64_t base = std::min(exp, config_.backoff_max_ms);
        const uint64_t jitter = backoff_rng_.UniformU64(base > 0 ? base : 1);
        stats_.backoff_sleep_ms += base + jitter;
        SleepMs(base + jitter);
      }
      ++stats_.reconnect_attempts;
      last = DialAndAuth(&link, /*resume=*/link.ever_connected);
      if (last.ok()) {
        restored = true;
        ++stats_.reconnects;
        break;
      }
    }
    if (!restored) {
      return Status::ProtocolError(
          "Reestablish: daemon " + link.host + ":" +
          std::to_string(link.port) + " unreachable after " +
          std::to_string(config_.max_reconnect_attempts) +
          " attempt(s); last error: " + last.message());
    }
  }
  return Status::OK();
}

}  // namespace psi
