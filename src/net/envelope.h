// Typed message framing for the multiparty transport.
//
// Every framed message carries a fixed-size header plus a CRC-32 trailer so
// a receiver can establish, *before* handing bytes to a protocol decoder,
// that (a) the frame is intact (checksum), (b) it belongs to the protocol
// and step the receiver is executing (typed framing), (c) it came from the
// claimed sender, and (d) it is the next message in the channel's sequence
// (duplicate / reorder / loss detection).
//
// Wire layout (little-endian, kEnvelopeOverheadBytes = 29 bytes total):
//
//   offset size field
//        0    4 magic        0x50534631 ("PSF1")
//        4    1 version      kEnvelopeVersion
//        5    2 protocol_id  ProtocolId of the sending driver
//        7    2 step         driver-defined step tag
//        9    4 sender       PartyId of the originator
//       13    8 seq          per-(from,to)-channel sequence number
//       21    4 payload_len  byte length of the payload
//       25    n payload
//     25+n    4 crc32        CRC-32 over bytes [0, 25+n)
//
// The overhead is deliberately fixed-width (no varints) so the Table 1/2
// communication-cost accounting stays a closed form: wire bytes =
// payload bytes + 29 * messages.

#ifndef PSI_NET_ENVELOPE_H_
#define PSI_NET_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Identifies which protocol driver produced a framed message.
enum class ProtocolId : uint16_t {
  kRaw = 0,               ///< Unframed legacy traffic (never on the wire).
  kSecureSum = 1,         ///< Protocols 1-2 (mpc/secure_sum).
  kSecureDivision = 3,    ///< Protocol 3 (mpc/secure_division).
  kLinkInfluence = 4,     ///< Protocol 4 (mpc/link_influence_protocol).
  kClassAggregation = 5,  ///< Protocol 5 (mpc/class_aggregation).
  kPropagationGraph = 6,  ///< Protocol 6 (mpc/propagation_protocol).
  kHomomorphicSum = 7,    ///< Paillier extension (mpc/homomorphic_sum).
  kJointRandom = 8,       ///< Joint randomness rounds (mpc/joint_random).
  kSession = 9,           ///< Session resume handshake (mpc/session).
  kExec = 10,             ///< Remote stage execution (mpc/remote_exec).
};

/// \brief Human-readable name of a protocol id ("SecureSum").
const char* ProtocolIdToString(ProtocolId id);

inline constexpr uint32_t kEnvelopeMagic = 0x50534631;  // "PSF1".
inline constexpr uint8_t kEnvelopeVersion = 1;

/// \brief Fixed framing overhead added to every enveloped message.
inline constexpr uint64_t kEnvelopeOverheadBytes = 29;

/// \brief A decoded frame: typed header plus the application payload.
struct Envelope {
  ProtocolId protocol_id = ProtocolId::kRaw;
  uint16_t step = 0;
  uint32_t sender = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

/// \brief Frames `payload` into the wire format described above.
std::vector<uint8_t> SealEnvelope(ProtocolId protocol_id, uint16_t step,
                                  uint32_t sender, uint64_t seq,
                                  const std::vector<uint8_t>& payload);

/// \brief Parses and validates a frame. Returns SerializationError on any
/// malformed input: short buffer, bad magic/version, length mismatch,
/// trailing bytes, or checksum failure. Never reads out of bounds.
[[nodiscard]] Result<Envelope> OpenEnvelope(const std::vector<uint8_t>& frame);

/// \brief Cheap peek at the sequence number of a sealed frame (no checksum
/// verification); used by fault layers to index retransmission stores.
/// Returns SerializationError if the buffer is too short or mistagged.
[[nodiscard]] Result<uint64_t> PeekEnvelopeSeq(const std::vector<uint8_t>& frame);

}  // namespace psi

#endif  // PSI_NET_ENVELOPE_H_
