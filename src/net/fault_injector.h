// Backend-agnostic deterministic fault injection: the decision/mutation
// engine shared by every transport decorator.
//
// FaultInjector owns the seeded RNG, the fault plan, the pristine
// retransmission store and the fault counters, but touches no mailbox and
// no socket: each transport (the in-process simulator via FaultyNetwork in
// net/fault.h, the loopback socket transport via SocketNetwork's chaos
// hook) feeds outgoing frames through OnTransmit and interprets the
// returned Verdict with its own delivery primitives. Because every RNG
// draw happens inside this class, in the exact order the original
// FaultyNetwork drew them, a given (plan, message sequence) produces the
// same fault schedule on every backend — which is what lets the chaos
// harness run one plan over both the simulator and real sockets and demand
// identical behavior.

#ifndef PSI_NET_FAULT_INJECTOR_H_
#define PSI_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/network.h"

namespace psi {

/// \brief Wildcard PartyId accepted by FaultRule matchers.
inline constexpr PartyId kAnyParty = 0xFFFFFFFFu;

/// \brief What a firing fault rule does to a frame in flight.
enum class FaultKind : uint8_t {
  kDrop = 0,      ///< Frame vanishes.
  kDuplicate,     ///< Frame is delivered twice.
  kReorder,       ///< Frame jumps ahead of the channel queue.
  kCorrupt,       ///< One random bit of the frame is flipped.
  kTruncate,      ///< Frame is cut to a random proper prefix.
  kDelay,         ///< Frame is held until the next BeginRound.
};

const char* FaultKindToString(FaultKind kind);

/// \brief One fault matcher: which messages it applies to and how often.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  PartyId from = kAnyParty;   ///< Sender filter (kAnyParty matches all).
  PartyId to = kAnyParty;     ///< Receiver filter.
  uint64_t round_min = 0;     ///< First round index the rule is active in.
  uint64_t round_max = UINT64_MAX;  ///< Last active round index.
  double probability = 1.0;   ///< Per-matching-message firing probability.
  uint32_t max_triggers = UINT32_MAX;  ///< Firing budget across the run.
};

/// \brief A party that stops participating after a given round: all its
/// transmissions (including retransmissions) are lost while it is down.
///
/// With the default `restart_round` the crash is permanent. A finite
/// `restart_round` models crash-*restart*: the party is down for round
/// indices in (after_round, restart_round) and rejoins from `restart_round`
/// on — having lost its volatile state, which is exactly the failure a
/// checkpointed ProtocolSession (mpc/session.h) recovers from. Restarting
/// parties keep their retransmission store (it models durable storage, like
/// the session checkpoint).
struct CrashSpec {
  PartyId party = kAnyParty;
  uint64_t after_round = 0;  ///< Down in every round index > after_round...
  uint64_t restart_round = UINT64_MAX;  ///< ...until this round (exclusive).
};

/// \brief A complete, seeded fault schedule.
struct FaultPlan {
  uint64_t seed = 0;  ///< Seeds the coin flips and mutation choices.
  std::vector<FaultRule> rules;
  std::optional<CrashSpec> crash;

  /// \brief The all-zero plan: the decorated transport behaves exactly like
  /// its lossless base.
  static FaultPlan None() { return FaultPlan{}; }

  /// \brief A randomized chaos schedule: 1-3 rules with random kinds,
  /// probabilities and budgets, plus an occasional crash of one of
  /// `num_parties` parties. Fully determined by `seed`.
  static FaultPlan RandomPlan(uint64_t seed, size_t num_parties);

  /// \brief A randomized crash-restart schedule for session recovery tests:
  /// always crashes one non-host party after a random round and restarts it
  /// a few rounds later, plus 0-2 light fault rules. Fully determined by
  /// `seed`. Kept separate from RandomPlan so its draw order (and therefore
  /// every existing chaos transcript) is unchanged.
  static FaultPlan RandomRestartPlan(uint64_t seed, size_t num_parties);
};

/// \brief Counters of what the fault layer actually did.
struct FaultStats {
  uint64_t transmitted = 0;    ///< Frames that entered the fault pipeline.
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
  uint64_t delayed = 0;
  uint64_t crash_dropped = 0;  ///< Sends silenced by a crash.
  uint64_t retransmits_served = 0;
  uint64_t retransmits_refused = 0;

  uint64_t injected() const {
    return dropped + duplicated + reordered + corrupted + truncated + delayed;
  }
};

/// \brief The plan-driven fault pipeline, independent of any transport.
class FaultInjector {
 public:
  /// \brief Channel key (from, to), mirroring Network's internal key.
  using ChannelKey = std::pair<PartyId, PartyId>;

  /// \brief What the transport must do with the frame OnTransmit returns.
  enum class Action : uint8_t {
    kDeliver = 0,   ///< Deliver normally (possibly mutated).
    kDeliverFront,  ///< Deliver jumped ahead of the channel queue (reorder).
    kDeliverTwice,  ///< Deliver two identical copies back to back.
    kSwallow,       ///< Nothing to deliver: dropped, crashed, or held.
  };

  struct Verdict {
    Action action = Action::kDeliver;
    std::vector<uint8_t> frame;  ///< Empty when action == kSwallow.
  };

  /// \brief Outcome of a retransmission request. When `wire_bytes` is
  /// nonzero a pristine frame was served (and possibly re-faulted): the
  /// transport must meter it as a fresh send before acting on `result`.
  struct Retransmission {
    size_t wire_bytes = 0;
    size_t payload_bytes = 0;
    Result<std::vector<uint8_t>> result =
        Result<std::vector<uint8_t>>(std::vector<uint8_t>{});
  };

  explicit FaultInjector(FaultPlan plan);

  /// \brief Runs one outgoing frame through the pipeline: crash check,
  /// pristine logging, rule matching, mutation. `round` is the transport's
  /// current round index. RNG draw order is part of this function's
  /// contract — see the file comment.
  Verdict OnTransmit(uint64_t round, PartyId from, PartyId to,
                     std::vector<uint8_t> frame);

  /// \brief Serves a retransmission request from the pristine store,
  /// re-running the fault pipeline on the copy (a retransmission travels
  /// the same unreliable wire). Refused when the sender is crashed at
  /// `round` or the frame was never sent. `channel` and `sender` are
  /// display strings for error messages (e.g. "P1 -> H", "P1").
  Retransmission OnRetransmit(uint64_t round, PartyId to, PartyId from,
                              uint64_t seq, const std::string& channel,
                              const std::string& sender);

  /// \brief Frames whose kDelay hold expires now, in original send order.
  /// The transport calls this at every round boundary and delivers them
  /// before the round's own traffic.
  std::vector<std::pair<ChannelKey, std::vector<uint8_t>>> TakeDelayed();

  /// \brief True when `party` is down at round index `round`.
  bool Crashed(PartyId party, uint64_t round) const;

  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  /// Index into plan_.rules of the first rule that matches and fires, or -1.
  int Decide(uint64_t round, PartyId from, PartyId to);
  std::vector<uint8_t> Mutate(FaultKind kind, std::vector<uint8_t> frame);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  std::vector<uint32_t> triggers_used_;  // Parallel to plan_.rules.
  // Pristine copies of every frame, per channel, for retransmission.
  std::map<ChannelKey, std::vector<std::vector<uint8_t>>> sent_log_;
  // Frames held by kDelay until the next round boundary.
  std::vector<std::pair<ChannelKey, std::vector<uint8_t>>> delayed_;
};

}  // namespace psi

#endif  // PSI_NET_FAULT_INJECTOR_H_
