#include "net/network.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace psi {

std::string TrafficReport::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %12s %14s %14s\n",
                "communication round", "messages", "bytes", "payload");
  out += line;
  for (const auto& r : rounds) {
    std::snprintf(line, sizeof(line), "%-44s %12llu %14llu %14llu\n",
                  r.label.c_str(),
                  static_cast<unsigned long long>(r.num_messages),
                  static_cast<unsigned long long>(r.num_bytes),
                  static_cast<unsigned long long>(r.num_payload_bytes));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-44s %12llu %14llu %14llu  (NR=%llu)\n",
                "TOTAL", static_cast<unsigned long long>(num_messages),
                static_cast<unsigned long long>(num_bytes),
                static_cast<unsigned long long>(num_payload_bytes),
                static_cast<unsigned long long>(num_rounds));
  out += line;
  return out;
}

PartyId Network::RegisterParty(std::string name) {
  names_.push_back(std::move(name));
  bytes_sent_by_.push_back(0);
  return static_cast<PartyId>(names_.size() - 1);
}

void Network::BeginRound(std::string label) {
  rounds_.push_back(RoundStats{std::move(label), 0, 0, 0});
  if (round_observer_) {
    round_observer_(rounds_.back().label, rounds_.size() - 1);
  }
}

void Network::SetRoundObserver(RoundObserver observer) {
  round_observer_ = std::move(observer);
}

const std::string& Network::CurrentRoundLabel() const {
  static const std::string kNoRound = "<no round>";
  return rounds_.empty() ? kNoRound : rounds_.back().label;
}

std::string Network::DescribeChannel(PartyId from, PartyId to) const {
  auto name = [this](PartyId id) {
    return ValidParty(id) ? names_[id] : "party#" + std::to_string(id);
  };
  return name(from) + " -> " + name(to);
}

Status Network::CheckSendArgs(PartyId from, PartyId to) const {
  if (!ValidParty(from) || !ValidParty(to)) {
    return Status::InvalidArgument("Send: unknown party id");
  }
  if (from == to) {
    return Status::InvalidArgument("Send: a party cannot message itself");
  }
  if (rounds_.empty()) {
    return Status::FailedPrecondition("Send before any BeginRound");
  }
  return Status::OK();
}

void Network::MeterSend(PartyId from, size_t wire_bytes,
                        size_t payload_bytes) {
  rounds_.back().num_messages += 1;
  rounds_.back().num_bytes += wire_bytes;
  rounds_.back().num_payload_bytes += payload_bytes;
  bytes_sent_by_[from] += wire_bytes;
}

void Network::Deliver(PartyId from, PartyId to, std::vector<uint8_t> frame,
                      bool front) {
  auto& box = mailboxes_[{from, to}];
  if (front) {
    box.push_front(std::move(frame));
  } else {
    box.push_back(std::move(frame));
  }
}

Status Network::Transmit(PartyId from, PartyId to,
                         std::vector<uint8_t> frame) {
  Deliver(from, to, std::move(frame));
  return Status::OK();
}

Status Network::Send(PartyId from, PartyId to, std::vector<uint8_t> payload) {
  PSI_RETURN_NOT_OK(CheckSendArgs(from, to));
  MeterSend(from, payload.size(), payload.size());
  return Transmit(from, to, std::move(payload));
}

Status Network::SendFramed(PartyId from, PartyId to, ProtocolId protocol_id,
                           uint16_t step,
                           const std::vector<uint8_t>& payload) {
  PSI_RETURN_NOT_OK(CheckSendArgs(from, to));
  uint64_t seq = send_seq_[{from, to}]++;
  std::vector<uint8_t> frame =
      SealEnvelope(protocol_id, step, from, seq, payload);
  MeterSend(from, frame.size(), payload.size());
  return Transmit(from, to, std::move(frame));
}

Result<std::vector<uint8_t>> Network::Recv(PartyId to, PartyId from) {
  if (!ValidParty(from) || !ValidParty(to)) {
    return Status::InvalidArgument("Recv: unknown party id");
  }
  auto it = mailboxes_.find({from, to});
  if (it == mailboxes_.end() || it->second.empty()) {
    return Status::FailedPrecondition(
        "Recv: no pending message on " + DescribeChannel(from, to) +
        " in round '" + CurrentRoundLabel() + "'");
  }
  std::vector<uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

Result<std::vector<uint8_t>> Network::RequestRetransmit(PartyId to,
                                                        PartyId from,
                                                        uint64_t seq) {
  (void)seq;
  return Status::FailedPrecondition(
      "retransmission unavailable on the lossless network for " +
      DescribeChannel(from, to));
}

Status Network::WaitForPending(PartyId to, PartyId from, uint64_t budget_ms) {
  (void)to;
  (void)from;
  (void)budget_ms;
  return Status::OK();  // Simulator mailboxes are synchronous.
}

Result<std::vector<uint8_t>> Network::RecvValidated(PartyId to, PartyId from,
                                                    ProtocolId protocol_id,
                                                    uint16_t step,
                                                    const RecvOptions& opts) {
  if (!ValidParty(from) || !ValidParty(to)) {
    return Status::InvalidArgument("RecvValidated: unknown party id");
  }
  const ChannelKey key{from, to};
  uint64_t& expected = recv_seq_[key];
  auto& stash = stash_[key];
  std::string last_error = "no message pending";
  // Attempts meter transport work (receives, retransmission requests,
  // damaged frames). Stale duplicates are free to discard but bounded
  // separately so a flooded mailbox still terminates. Retransmission
  // requests draw on their own budget so a dead channel degrades into a
  // clean error instead of hammering the peer max_attempts times.
  const uint64_t deadline_ms =
      opts.deadline_ms != 0 ? opts.deadline_ms : DefaultRecvDeadlineMs();
  const auto started = std::chrono::steady_clock::now();
  auto elapsed_ms = [&started]() -> uint64_t {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
  };
  int attempts = 0;
  int discards = 0;
  int retransmits = 0;
  while (attempts < opts.max_attempts && discards < opts.max_discards) {
    if (deadline_ms != 0 && elapsed_ms() >= deadline_ms) {
      return Status::ProtocolError(
          "RecvValidated: deadline of " + std::to_string(deadline_ms) +
          " ms expired on " + DescribeChannel(from, to) + " in round '" +
          CurrentRoundLabel() + "'; last transport error: " + last_error);
    }
    std::vector<uint8_t> frame;
    auto sit = stash.find(expected);
    if (sit != stash.end()) {
      frame = std::move(sit->second);
      stash.erase(sit);
    } else if (HasPending(to, from)) {
      PSI_ASSIGN_OR_RETURN(frame, Recv(to, from));
      ++attempts;
    } else {
      ++attempts;
      uint64_t wait_budget_ms =
          deadline_ms != 0 ? deadline_ms - elapsed_ms() : 0;
      Status waited = WaitForPending(to, from, wait_budget_ms);
      if (!waited.ok()) {
        last_error = waited.message();
        continue;
      }
      if (HasPending(to, from)) {
        PSI_ASSIGN_OR_RETURN(frame, Recv(to, from));
      } else {
        if (retransmits >= opts.max_retransmits) {
          break;  // Nothing pending and no budget left; keep last_error.
        }
        ++retransmits;
        auto retry = RequestRetransmit(to, from, expected);
        if (!retry.ok()) {
          last_error = retry.status().message();
          continue;
        }
        frame = std::move(retry).MoveValue();
      }
    }
    auto env = OpenEnvelope(frame);
    if (!env.ok()) {
      last_error = env.status().message();
      continue;
    }
    if (env->seq < expected) {
      ++discards;  // Stale duplicate of an already-accepted frame.
      continue;
    }
    if (env->seq > expected) {
      if (stash.size() >= kMaxStashedFramesPerChannel) {
        return Status::ProtocolError(
            "RecvValidated: early-frame stash overflow on " +
            DescribeChannel(from, to) + " in round '" + CurrentRoundLabel() +
            "' (" + std::to_string(stash.size()) +
            " frames ahead of seq " + std::to_string(expected) +
            "); refusing to buffer more");
      }
      stash.emplace(env->seq, std::move(frame));  // Arrived early.
      ++discards;
      continue;
    }
    if (env->sender != from) {
      last_error = "frame claims sender " + std::to_string(env->sender);
      continue;
    }
    if (env->protocol_id != protocol_id || env->step != step) {
      // An intact, in-sequence frame of the wrong type is not a transport
      // fault: the peer is running a different protocol or step. No number
      // of retransmissions can fix that.
      return Status::ProtocolError(
          std::string("RecvValidated: expected ") +
          ProtocolIdToString(protocol_id) + " step " + std::to_string(step) +
          " but got " + ProtocolIdToString(env->protocol_id) + " step " +
          std::to_string(env->step) + " on " + DescribeChannel(from, to) +
          " in round '" + CurrentRoundLabel() + "'");
    }
    ++expected;
    return std::move(env->payload);
  }
  return Status::ProtocolError(
      "RecvValidated: giving up on " + DescribeChannel(from, to) +
      " in round '" + CurrentRoundLabel() + "' after " +
      std::to_string(attempts) + " attempt(s) and " +
      std::to_string(retransmits) +
      " retransmission request(s); last transport error: " + last_error);
}

bool Network::HasPending(PartyId to, PartyId from) const {
  auto it = mailboxes_.find({from, to});
  return it != mailboxes_.end() && !it->second.empty();
}

size_t Network::PendingCount() const {
  size_t count = 0;
  for (const auto& [key, box] : mailboxes_) count += box.size();
  return count;
}

std::string Network::Drain(PartyId to) {
  std::string summary;
  for (auto& [key, box] : mailboxes_) {
    if (key.second != to || box.empty()) continue;
    if (!summary.empty()) summary += "; ";
    summary += std::to_string(box.size()) + " message(s) from " +
               (ValidParty(key.first) ? names_[key.first]
                                      : std::to_string(key.first)) +
               " (sizes:";
    for (const auto& frame : box) {
      summary += " " + std::to_string(frame.size());
    }
    summary += " bytes)";
    box.clear();
  }
  return summary;
}

std::string Network::DrainAll() {
  std::string summary;
  for (PartyId id = 0; id < names_.size(); ++id) {
    std::string part = Drain(id);
    if (part.empty()) continue;
    if (!summary.empty()) summary += "; ";
    summary += "to " + names_[id] + ": " + part;
  }
  return summary;
}

void Network::ResyncChannel(PartyId from, PartyId to) {
  const ChannelKey key{from, to};
  recv_seq_[key] = send_seq_[key];
  stash_[key].clear();
}

size_t Network::StashedCount(PartyId from, PartyId to) const {
  auto it = stash_.find({from, to});
  return it == stash_.end() ? 0 : it->second.size();
}

TrafficReport Network::Report() const {
  TrafficReport report;
  report.rounds = rounds_;
  report.num_rounds = rounds_.size();
  for (const auto& r : rounds_) {
    report.num_messages += r.num_messages;
    report.num_bytes += r.num_bytes;
    report.num_payload_bytes += r.num_payload_bytes;
  }
  return report;
}

uint64_t Network::BytesSentBy(PartyId id) const {
  return ValidParty(id) ? bytes_sent_by_[id] : 0;
}

Status Network::ResetMetering() {
  if (PendingCount() != 0) {
    return Status::FailedPrecondition("ResetMetering with undelivered messages");
  }
  rounds_.clear();
  for (auto& b : bytes_sent_by_) b = 0;
  return Status::OK();
}

}  // namespace psi
