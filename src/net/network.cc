#include "net/network.h"

#include <cstdio>

namespace psi {

std::string TrafficReport::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %12s %14s\n", "communication round",
                "messages", "bytes");
  out += line;
  for (const auto& r : rounds) {
    std::snprintf(line, sizeof(line), "%-44s %12llu %14llu\n", r.label.c_str(),
                  static_cast<unsigned long long>(r.num_messages),
                  static_cast<unsigned long long>(r.num_bytes));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-44s %12llu %14llu  (NR=%llu)\n",
                "TOTAL", static_cast<unsigned long long>(num_messages),
                static_cast<unsigned long long>(num_bytes),
                static_cast<unsigned long long>(num_rounds));
  out += line;
  return out;
}

PartyId Network::RegisterParty(std::string name) {
  names_.push_back(std::move(name));
  bytes_sent_by_.push_back(0);
  return static_cast<PartyId>(names_.size() - 1);
}

void Network::BeginRound(std::string label) {
  rounds_.push_back(RoundStats{std::move(label), 0, 0});
}

Status Network::Send(PartyId from, PartyId to, std::vector<uint8_t> payload) {
  if (!ValidParty(from) || !ValidParty(to)) {
    return Status::InvalidArgument("Send: unknown party id");
  }
  if (from == to) {
    return Status::InvalidArgument("Send: a party cannot message itself");
  }
  if (rounds_.empty()) {
    return Status::FailedPrecondition("Send before any BeginRound");
  }
  rounds_.back().num_messages += 1;
  rounds_.back().num_bytes += payload.size();
  bytes_sent_by_[from] += payload.size();
  mailboxes_[{from, to}].push_back(std::move(payload));
  return Status::OK();
}

Result<std::vector<uint8_t>> Network::Recv(PartyId to, PartyId from) {
  if (!ValidParty(from) || !ValidParty(to)) {
    return Status::InvalidArgument("Recv: unknown party id");
  }
  auto it = mailboxes_.find({from, to});
  if (it == mailboxes_.end() || it->second.empty()) {
    return Status::FailedPrecondition(
        "Recv: no pending message from " + names_[from] + " to " + names_[to]);
  }
  std::vector<uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

bool Network::HasPending(PartyId to, PartyId from) const {
  auto it = mailboxes_.find({from, to});
  return it != mailboxes_.end() && !it->second.empty();
}

size_t Network::PendingCount() const {
  size_t count = 0;
  for (const auto& [key, box] : mailboxes_) count += box.size();
  return count;
}

TrafficReport Network::Report() const {
  TrafficReport report;
  report.rounds = rounds_;
  report.num_rounds = rounds_.size();
  for (const auto& r : rounds_) {
    report.num_messages += r.num_messages;
    report.num_bytes += r.num_bytes;
  }
  return report;
}

uint64_t Network::BytesSentBy(PartyId id) const {
  return ValidParty(id) ? bytes_sent_by_[id] : 0;
}

Status Network::ResetMetering() {
  if (PendingCount() != 0) {
    return Status::FailedPrecondition("ResetMetering with undelivered messages");
  }
  rounds_.clear();
  for (auto& b : bytes_sent_by_) b = 0;
  return Status::OK();
}

}  // namespace psi
