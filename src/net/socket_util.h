// Shared plumbing for the socket transport: the client-side SocketNetwork
// (net/socket_transport.h) and the psid daemon (net/daemon.h) speak one
// length-prefixed message format over TCP, and both sides need the same
// non-blocking socket helpers and a monotonic clock. Everything here is
// transport-level: protocol payloads stay sealed in their CRC32 envelopes
// (net/envelope.h) and ride opaquely inside kData messages.
//
// Wire layout of one transport message (little-endian):
//
//   offset  size  field
//        0     4  magic "PSTR" (0x52545350)
//        4     1  kind (TransportMsgKind)
//        5     1  flags (kind-specific; kData: bit 0 = deliver-at-front)
//        6     2  reserved (zero)
//        8     4  body length in bytes
//       12     n  body
//
// Bodies are built with common/serialize.h. kData bodies carry a routing
// prefix [u32 from][u32 to] followed by the raw envelope frame.

#ifndef PSI_NET_SOCKET_UTIL_H_
#define PSI_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Transport message types (the `kind` header byte).
enum class TransportMsgKind : uint8_t {
  kChallenge = 1,    ///< daemon -> client: 16-byte auth nonce.
  kHello = 2,        ///< client -> daemon: auth digest + session + parties.
  kHelloAck = 3,     ///< daemon -> client: accept/reject verdict.
  kData = 4,         ///< either way: one routed envelope frame.
  kHeartbeat = 5,    ///< client -> daemon: liveness probe.
  kHeartbeatAck = 6, ///< daemon -> client: liveness answer.
  kGoodbye = 7,      ///< either way: orderly shutdown of the connection.
  kExec = 8,         ///< client -> daemon: run one stage program (body is a
                     ///< ProtocolId::kExec envelope; consumed by the daemon,
                     ///< never routed, never protocol-metered).
  kExecResult = 9,   ///< daemon -> client: the stage program's result
                     ///< envelope (empty body = no execution engine).
};

const char* TransportMsgKindToString(TransportMsgKind kind);

inline constexpr uint32_t kTransportMagic = 0x52545350u;  // "PSTR".
inline constexpr size_t kTransportHeaderBytes = 12;
/// Upper bound on one message body; a violation means a framing bug or a
/// hostile peer, and the connection is torn down rather than trusted.
inline constexpr uint32_t kMaxTransportBodyBytes = 1u << 24;
/// kData flag bit: deliver this frame at the front of the channel queue
/// (the fault decorator's reorder action crossing the wire).
inline constexpr uint8_t kTransportFlagFront = 0x01;
/// kHello flag bit: this is a reconnect of a previously-admitted session,
/// not a fresh one (the daemon keeps the session's routing state).
inline constexpr uint8_t kTransportFlagResume = 0x01;
/// Size of the kChallenge nonce.
inline constexpr size_t kAuthNonceBytes = 16;

/// \brief One parsed transport message.
struct TransportMsg {
  TransportMsgKind kind = TransportMsgKind::kData;
  uint8_t flags = 0;
  std::vector<uint8_t> body;
};

/// \brief Serializes a message (header + body) ready for the wire.
std::vector<uint8_t> PackTransportMsg(TransportMsgKind kind, uint8_t flags,
                                      const std::vector<uint8_t>& body);

/// \brief Incremental parser for a TCP byte stream of transport messages.
/// Feed it whatever recv() produced; it re-frames across arbitrary
/// fragmentation. A malformed header (bad magic, oversized body) is a
/// permanent error: the stream has lost framing and the connection must be
/// dropped.
class TransportParser {
 public:
  void Append(const uint8_t* data, size_t len);

  /// \brief Extracts the next complete message into `out`. Returns true
  /// when one was produced, false when more bytes are needed.
  [[nodiscard]] Result<bool> Next(TransportMsg* out);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  void Compact();

  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

/// \brief Milliseconds from a monotonic clock (never wall time).
uint64_t MonotonicMs();

/// \brief Sleeps the calling thread for `ms` milliseconds.
void SleepMs(uint64_t ms);

/// \brief Puts `fd` in non-blocking mode.
[[nodiscard]] Status SetNonBlocking(int fd);

/// \brief Disables Nagle batching on a TCP socket (latency over throughput:
/// protocol rounds are request/response shaped).
[[nodiscard]] Status SetNoDelay(int fd);

/// \brief Non-blocking write of as much of `queue` as the kernel accepts,
/// front to back. Fully-written buffers are popped; a partial write trims
/// the front buffer in place. Returns an error only for a dead socket
/// (EPIPE and friends), not for a full buffer.
[[nodiscard]] Status FlushSendQueue(int fd,
                                    std::deque<std::vector<uint8_t>>* queue);

/// \brief Non-blocking read of everything currently available on `fd` into
/// `parser`. Sets `*closed` when the peer performed an orderly shutdown
/// and adds the byte count to `*bytes_read` (when non-null). Returns an
/// error for a reset/broken connection.
[[nodiscard]] Status ReadAvailable(int fd, TransportParser* parser,
                                   bool* closed,
                                   size_t* bytes_read = nullptr);

}  // namespace psi

#endif  // PSI_NET_SOCKET_UTIL_H_
