#include "graph/propagation_graph.h"

#include <limits>
#include <queue>

namespace psi {

Status PropagationGraph::AddArc(NodeId from, NodeId to, uint64_t delta_t) {
  if (from >= num_nodes() || to >= num_nodes()) {
    return Status::OutOfRange("PropagationGraph::AddArc: node out of range");
  }
  if (delta_t == 0) {
    return Status::InvalidArgument("propagation delay must be positive");
  }
  adj_[from].push_back(LabeledArc{to, delta_t});
  ++num_arcs_;
  return Status::OK();
}

std::vector<NodeId> PropagationGraph::BoundedReachable(NodeId src,
                                                       uint64_t tau) const {
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> dist(num_nodes(), kInf);
  using Entry = std::pair<uint64_t, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[src] = 0;
  frontier.push({0, src});
  while (!frontier.empty()) {
    auto [d, v] = frontier.top();
    frontier.pop();
    if (d != dist[v]) continue;  // Stale entry.
    for (const LabeledArc& arc : adj_[v]) {
      uint64_t nd = d + arc.delta_t;
      if (nd <= tau && nd < dist[arc.to]) {
        dist[arc.to] = nd;
        frontier.push({nd, arc.to});
      }
    }
  }
  std::vector<NodeId> reachable;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v != src && dist[v] <= tau) reachable.push_back(v);
  }
  return reachable;
}

}  // namespace psi
