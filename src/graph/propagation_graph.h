// The propagation graph PG(alpha) of Definition 3.1: a labeled graph with an
// arc (v_i, v_j) labeled Delta t = t_j - t_i > 0 whenever (v_i, v_j) in E and
// both users performed the action. Influence spheres (Definition 3.2) are
// tau-bounded reachability sets in this graph.

#ifndef PSI_GRAPH_PROPAGATION_GRAPH_H_
#define PSI_GRAPH_PROPAGATION_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief Weighted arc of a propagation graph.
struct LabeledArc {
  NodeId to;
  uint64_t delta_t;  ///< Propagation delay along the arc (> 0).
};

/// \brief The propagation graph of one action.
class PropagationGraph {
 public:
  explicit PropagationGraph(size_t num_nodes) : adj_(num_nodes) {}

  size_t num_nodes() const { return adj_.size(); }
  size_t num_arcs() const { return num_arcs_; }

  /// \brief Adds (from, to) labeled delta_t. delta_t must be positive.
  [[nodiscard]] Status AddArc(NodeId from, NodeId to, uint64_t delta_t);

  const std::vector<LabeledArc>& OutArcs(NodeId v) const { return adj_[v]; }

  /// \brief Nodes reachable from `src` by a path whose label sum is <= tau
  /// (Dijkstra over non-negative delays). `src` itself is excluded; see
  /// DESIGN.md §3 for the Definition 3.2 interpretation note.
  std::vector<NodeId> BoundedReachable(NodeId src, uint64_t tau) const;

  /// \brief |Inf_tau(src)| — the size of the tau-influence sphere.
  size_t InfluenceSphereSize(NodeId src, uint64_t tau) const {
    return BoundedReachable(src, tau).size();
  }

 private:
  std::vector<std::vector<LabeledArc>> adj_;
  size_t num_arcs_ = 0;
};

}  // namespace psi

#endif  // PSI_GRAPH_PROPAGATION_GRAPH_H_
