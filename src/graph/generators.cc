#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

namespace psi {

Result<SocialGraph> ErdosRenyiArcs(Rng* rng, size_t num_nodes,
                                   size_t num_arcs) {
  if (num_nodes < 2) return Status::InvalidArgument("need >= 2 nodes");
  size_t max_arcs = num_nodes * (num_nodes - 1);
  if (num_arcs > max_arcs) {
    return Status::InvalidArgument("more arcs than ordered pairs");
  }
  SocialGraph g(num_nodes);
  while (g.num_arcs() < num_arcs) {
    auto u = static_cast<NodeId>(rng->UniformU64(num_nodes));
    auto v = static_cast<NodeId>(rng->UniformU64(num_nodes));
    if (u == v || g.HasArc(u, v)) continue;
    PSI_RETURN_NOT_OK(g.AddArc(u, v));
  }
  return g;
}

Result<SocialGraph> ErdosRenyiProb(Rng* rng, size_t num_nodes, double p) {
  if (num_nodes < 2) return Status::InvalidArgument("need >= 2 nodes");
  if (p < 0.0 || p > 1.0) return Status::InvalidArgument("p must be in [0,1]");
  SocialGraph g(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (u != v && rng->Bernoulli(p)) {
        PSI_RETURN_NOT_OK(g.AddArc(u, v));
      }
    }
  }
  return g;
}

Result<SocialGraph> BarabasiAlbert(Rng* rng, size_t num_nodes, size_t attach) {
  if (attach == 0) return Status::InvalidArgument("attach must be positive");
  if (num_nodes <= attach) {
    return Status::InvalidArgument("need more nodes than attachment count");
  }
  SocialGraph g(num_nodes);
  // Seed clique over the first attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = 0; v <= attach; ++v) {
      if (u < v) PSI_RETURN_NOT_OK(g.AddSymmetric(u, v));
    }
  }
  // repeated_nodes holds each node once per incident undirected edge, so
  // sampling uniformly from it is degree-proportional sampling.
  std::vector<NodeId> repeated;
  for (NodeId u = 0; u <= attach; ++u) {
    for (size_t d = 0; d < attach; ++d) repeated.push_back(u);
  }
  for (NodeId u = static_cast<NodeId>(attach + 1); u < num_nodes; ++u) {
    std::unordered_set<NodeId> targets;
    while (targets.size() < attach) {
      NodeId t = repeated[rng->UniformU64(repeated.size())];
      if (t != u) targets.insert(t);
    }
    for (NodeId t : targets) {
      PSI_RETURN_NOT_OK(g.AddSymmetric(u, t));
      repeated.push_back(u);
      repeated.push_back(t);
    }
  }
  return g;
}

Result<SocialGraph> WattsStrogatz(Rng* rng, size_t num_nodes, size_t k,
                                  double beta) {
  if (k == 0 || k >= num_nodes / 2) {
    return Status::InvalidArgument("k must be in [1, n/2)");
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0,1]");
  }
  SocialGraph g(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (size_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng->Bernoulli(beta)) {
        // Rewire: pick a random non-duplicate target.
        for (int tries = 0; tries < 64; ++tries) {
          auto w = static_cast<NodeId>(rng->UniformU64(num_nodes));
          if (w != u && !g.HasArc(u, w)) {
            v = w;
            break;
          }
        }
      }
      if (v != u && !g.HasArc(u, v)) {
        PSI_RETURN_NOT_OK(g.AddArc(u, v));
        if (!g.HasArc(v, u)) PSI_RETURN_NOT_OK(g.AddArc(v, u));
      }
    }
  }
  return g;
}

Result<std::vector<Arc>> ObfuscateArcSet(Rng* rng, const SocialGraph& graph,
                                         double factor) {
  if (factor <= 1.0) {
    return Status::InvalidArgument("obfuscation factor must exceed 1");
  }
  size_t n = graph.num_nodes();
  size_t max_arcs = n * (n - 1);
  auto target =
      static_cast<size_t>(factor * static_cast<double>(graph.num_arcs()));
  target = std::min(std::max(target, graph.num_arcs()), max_arcs);

  std::vector<Arc> result = graph.arcs();
  std::unordered_set<uint64_t> seen;
  seen.reserve(target);
  for (const Arc& a : result) {
    seen.insert((static_cast<uint64_t>(a.from) << 32) | a.to);
  }
  while (result.size() < target) {
    auto u = static_cast<NodeId>(rng->UniformU64(n));
    auto v = static_cast<NodeId>(rng->UniformU64(n));
    if (u == v) continue;
    if (!seen.insert((static_cast<uint64_t>(u) << 32) | v).second) continue;
    result.push_back(Arc{u, v});
  }
  rng->Shuffle(&result);
  return result;
}

}  // namespace psi
