#include "graph/io.h"

#include <fstream>
#include <optional>
#include <sstream>

namespace psi {

Status WriteGraphText(const SocialGraph& graph, std::ostream* out) {
  *out << "# psi social graph\n";
  *out << "nodes " << graph.num_nodes() << "\n";
  for (const Arc& a : graph.arcs()) {
    *out << "arc " << a.from << " " << a.to << "\n";
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<SocialGraph> ReadGraphText(std::istream* in) {
  std::optional<SocialGraph> graph;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "nodes") {
      uint64_t n = 0;
      if (!(fields >> n) || n == 0) {
        return Status::SerializationError("bad node count at line " +
                                          std::to_string(line_no));
      }
      if (graph.has_value()) {
        return Status::SerializationError("duplicate nodes directive");
      }
      graph.emplace(n);
    } else if (kind == "arc") {
      if (!graph.has_value()) {
        return Status::SerializationError("arc before nodes directive");
      }
      uint64_t from = 0, to = 0;
      if (!(fields >> from >> to)) {
        return Status::SerializationError("bad arc at line " +
                                          std::to_string(line_no));
      }
      if (from >= graph->num_nodes() || to >= graph->num_nodes()) {
        return Status::OutOfRange("arc endpoint out of range at line " +
                                  std::to_string(line_no));
      }
      PSI_RETURN_NOT_OK(graph->AddArc(static_cast<NodeId>(from),
                                      static_cast<NodeId>(to)));
    } else {
      return Status::SerializationError("unknown record '" + kind +
                                        "' at line " + std::to_string(line_no));
    }
  }
  if (!graph.has_value()) {
    return Status::SerializationError("missing nodes directive");
  }
  return *std::move(graph);
}

Status SaveGraph(const SocialGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  return WriteGraphText(graph, &out);
}

Result<SocialGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  return ReadGraphText(&in);
}

}  // namespace psi
