// Structural graph metrics, used to characterize the synthetic workloads
// the benches run on (the paper's communication costs depend on |E| and the
// cascade shapes depend on degree structure).

#ifndef PSI_GRAPH_METRICS_H_
#define PSI_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace psi {

/// \brief Degree summary of a directed graph.
struct DegreeStats {
  double mean_out = 0.0;
  size_t max_out = 0;
  size_t max_in = 0;
  /// histogram[d] = number of nodes with out-degree d (capped at last bin).
  std::vector<size_t> out_histogram;
};

/// \brief Computes degree statistics; the histogram covers degrees
/// 0..max_bins-1 with the final bin absorbing the tail.
DegreeStats ComputeDegreeStats(const SocialGraph& graph,
                               size_t max_bins = 64);

/// \brief Fraction of arcs whose reverse arc also exists (reciprocity);
/// 1.0 for symmetric graphs, 0 for arc-free graphs.
double Reciprocity(const SocialGraph& graph);

/// \brief Global clustering coefficient of the undirected projection:
/// 3 * triangles / connected triples. 0 for degenerate graphs.
double ClusteringCoefficient(const SocialGraph& graph);

/// \brief Number of nodes reachable from `src` ignoring labels (BFS).
size_t ReachableCount(const SocialGraph& graph, NodeId src);

}  // namespace psi

#endif  // PSI_GRAPH_METRICS_H_
