#include "graph/graph.h"

namespace psi {

SocialGraph::SocialGraph(size_t num_nodes) : out_(num_nodes), in_(num_nodes) {}

Status SocialGraph::AddArc(NodeId from, NodeId to) {
  if (from >= num_nodes() || to >= num_nodes()) {
    return Status::OutOfRange("AddArc: node id out of range");
  }
  if (from == to) return Status::InvalidArgument("AddArc: self-loop");
  if (!arc_set_.insert(ArcKey(from, to)).second) {
    return Status::AlreadyExists("AddArc: duplicate arc");
  }
  out_[from].push_back(to);
  in_[to].push_back(from);
  arcs_.push_back(Arc{from, to});
  return Status::OK();
}

bool SocialGraph::HasArc(NodeId from, NodeId to) const {
  return arc_set_.contains(ArcKey(from, to));
}

Status SocialGraph::AddSymmetric(NodeId u, NodeId v) {
  PSI_RETURN_NOT_OK(AddArc(u, v));
  return AddArc(v, u);
}

}  // namespace psi
