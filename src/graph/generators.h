// Synthetic social-graph generators. The paper's proprietary host graph is
// substituted by standard random-graph families (see DESIGN.md §3); the
// protocols only read the arc set, so any family exercises the same code.

#ifndef PSI_GRAPH_GENERATORS_H_
#define PSI_GRAPH_GENERATORS_H_

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief G(n, M): exactly `num_arcs` distinct directed arcs, uniform.
[[nodiscard]] Result<SocialGraph> ErdosRenyiArcs(Rng* rng, size_t num_nodes,
                                   size_t num_arcs);

/// \brief G(n, p): each ordered pair becomes an arc with probability p.
[[nodiscard]] Result<SocialGraph> ErdosRenyiProb(Rng* rng, size_t num_nodes, double p);

/// \brief Barabasi-Albert preferential attachment; each new node attaches to
/// `attach` existing nodes, creating arcs in both directions (followers of
/// popular accounts). Produces a heavy-tailed degree distribution.
[[nodiscard]] Result<SocialGraph> BarabasiAlbert(Rng* rng, size_t num_nodes, size_t attach);

/// \brief Watts-Strogatz small world on a ring: each node linked to `k`
/// clockwise neighbors (both arc directions), each arc rewired with
/// probability `beta`.
[[nodiscard]] Result<SocialGraph> WattsStrogatz(Rng* rng, size_t num_nodes, size_t k,
                                  double beta);

/// \brief The paper's E' obfuscation (Protocol 4 step 1 / Protocol 6 step 1):
/// a uniformly random superset E' of the arcs of `graph` with
/// |E'| >= factor * |E|, factor > 1. Returns arcs in randomized order so the
/// position of a pair inside Omega_E' carries no information.
[[nodiscard]] Result<std::vector<Arc>> ObfuscateArcSet(Rng* rng, const SocialGraph& graph,
                                         double factor);

}  // namespace psi

#endif  // PSI_GRAPH_GENERATORS_H_
