// The host's social graph G = (V, E): directed, a link (u, v) meaning v
// follows u, i.e. u can influence v (Section 3).

#ifndef PSI_GRAPH_GRAPH_H_
#define PSI_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Dense node identifier in [0, num_nodes).
using NodeId = uint32_t;

/// \brief A directed arc (source influences target).
struct Arc {
  NodeId from;
  NodeId to;

  bool operator==(const Arc&) const = default;
  bool operator<(const Arc& o) const {
    return from != o.from ? from < o.from : to < o.to;
  }
};

/// \brief Directed social graph with O(1) arc membership tests.
class SocialGraph {
 public:
  /// Constructs an empty graph on `num_nodes` isolated nodes.
  explicit SocialGraph(size_t num_nodes);

  size_t num_nodes() const { return out_.size(); }
  size_t num_arcs() const { return arcs_.size(); }

  /// \brief Adds arc (from, to). Self-loops and duplicates are rejected.
  [[nodiscard]] Status AddArc(NodeId from, NodeId to);

  /// \brief True iff (from, to) is an arc.
  bool HasArc(NodeId from, NodeId to) const;

  /// \brief Adds both (u, v) and (v, u) — undirected relations like
  /// friendship are modeled as two arcs (footnote 4 of the paper).
  [[nodiscard]] Status AddSymmetric(NodeId u, NodeId v);

  const std::vector<NodeId>& OutNeighbors(NodeId v) const { return out_[v]; }
  const std::vector<NodeId>& InNeighbors(NodeId v) const { return in_[v]; }

  /// \brief All arcs in insertion order.
  const std::vector<Arc>& arcs() const { return arcs_; }

  size_t OutDegree(NodeId v) const { return out_[v].size(); }
  size_t InDegree(NodeId v) const { return in_[v].size(); }

 private:
  static uint64_t ArcKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<Arc> arcs_;
  std::unordered_set<uint64_t> arc_set_;
};

}  // namespace psi

#endif  // PSI_GRAPH_GRAPH_H_
