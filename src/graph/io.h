// Text serialization of social graphs, so hosts can load real edge lists.
//
// Format (one record per line, '#' comments allowed):
//   nodes <n>
//   arc <from> <to>
// The loader validates ids and rejects duplicates/self-loops via
// SocialGraph::AddArc.

#ifndef PSI_GRAPH_IO_H_
#define PSI_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief Writes the graph to a stream.
[[nodiscard]] Status WriteGraphText(const SocialGraph& graph, std::ostream* out);

/// \brief Reads a graph from a stream.
[[nodiscard]] Result<SocialGraph> ReadGraphText(std::istream* in);

/// \brief File conveniences.
[[nodiscard]] Status SaveGraph(const SocialGraph& graph, const std::string& path);
[[nodiscard]] Result<SocialGraph> LoadGraph(const std::string& path);

}  // namespace psi

#endif  // PSI_GRAPH_IO_H_
