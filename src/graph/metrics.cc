#include "graph/metrics.h"

#include <algorithm>
#include <queue>
#include <set>

namespace psi {

DegreeStats ComputeDegreeStats(const SocialGraph& graph, size_t max_bins) {
  DegreeStats stats;
  stats.out_histogram.assign(std::max<size_t>(max_bins, 1), 0);
  const size_t n = graph.num_nodes();
  if (n == 0) return stats;
  size_t total_out = 0;
  for (NodeId v = 0; v < n; ++v) {
    size_t out = graph.OutDegree(v);
    size_t in = graph.InDegree(v);
    total_out += out;
    stats.max_out = std::max(stats.max_out, out);
    stats.max_in = std::max(stats.max_in, in);
    ++stats.out_histogram[std::min(out, stats.out_histogram.size() - 1)];
  }
  stats.mean_out = static_cast<double>(total_out) / static_cast<double>(n);
  return stats;
}

double Reciprocity(const SocialGraph& graph) {
  if (graph.num_arcs() == 0) return 0.0;
  size_t mutual = 0;
  for (const Arc& a : graph.arcs()) {
    if (graph.HasArc(a.to, a.from)) ++mutual;
  }
  return static_cast<double>(mutual) / static_cast<double>(graph.num_arcs());
}

double ClusteringCoefficient(const SocialGraph& graph) {
  const size_t n = graph.num_nodes();
  // Undirected projection as sorted neighbor sets.
  std::vector<std::set<NodeId>> nbrs(n);
  for (const Arc& a : graph.arcs()) {
    nbrs[a.from].insert(a.to);
    nbrs[a.to].insert(a.from);
  }
  uint64_t triangles3 = 0;  // Counts each triangle once per corner.
  uint64_t triples = 0;
  for (NodeId v = 0; v < n; ++v) {
    uint64_t d = nbrs[v].size();
    if (d < 2) continue;
    triples += d * (d - 1) / 2;
    for (auto it = nbrs[v].begin(); it != nbrs[v].end(); ++it) {
      auto jt = it;
      for (++jt; jt != nbrs[v].end(); ++jt) {
        if (nbrs[*it].contains(*jt)) ++triangles3;
      }
    }
  }
  if (triples == 0) return 0.0;
  return static_cast<double>(triangles3) / static_cast<double>(triples);
}

size_t ReachableCount(const SocialGraph& graph, NodeId src) {
  std::vector<bool> seen(graph.num_nodes(), false);
  std::queue<NodeId> frontier;
  seen[src] = true;
  frontier.push(src);
  size_t count = 0;
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : graph.OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        frontier.push(w);
      }
    }
  }
  return count;
}

}  // namespace psi
