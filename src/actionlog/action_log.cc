#include "actionlog/action_log.h"

#include <algorithm>

namespace psi {

void ActionLog::Add(const ActionRecord& record) {
  uint64_t key = Key(record.user, record.action);
  auto it = seen_.find(key);
  if (it != seen_.end()) {
    // Keep the earliest occurrence.
    if (record.time < records_[it->second].time) {
      records_[it->second].time = record.time;
      InvalidateIndex();
    }
    return;
  }
  seen_.emplace(key, records_.size());
  records_.push_back(record);
  InvalidateIndex();
}

void ActionLog::Merge(const ActionLog& other) {
  for (const auto& r : other.records_) Add(r);
}

bool ActionLog::Lookup(NodeId user, ActionId action, uint64_t* time_out) const {
  auto it = seen_.find(Key(user, action));
  if (it == seen_.end()) return false;
  if (time_out != nullptr) *time_out = records_[it->second].time;
  return true;
}

uint64_t ActionLog::MaxTime() const {
  uint64_t mx = 0;
  for (const auto& r : records_) mx = std::max(mx, r.time);
  return mx;
}

ActionId ActionLog::MaxActionId() const {
  ActionId mx = 0;
  for (const auto& r : records_) mx = std::max(mx, r.action + 1);
  return mx;
}

NodeId ActionLog::MaxUserId() const {
  NodeId mx = 0;
  for (const auto& r : records_) mx = std::max(mx, r.user + 1);
  return mx;
}

std::vector<ActionRecord> ActionLog::RecordsOfAction(ActionId action) const {
  std::vector<ActionRecord> out;
  for (const auto& r : records_) {
    if (r.action == action) out.push_back(r);
  }
  return out;
}

void ActionLog::BuildIndex() const {
  user_index_.clear();
  for (const auto& r : records_) {
    user_index_[r.user][r.action] = r.time;
  }
  index_built_ = true;
}

const std::unordered_map<ActionId, uint64_t>& ActionLog::UserIndex(
    NodeId user) const {
  if (!index_built_) BuildIndex();
  static const std::unordered_map<ActionId, uint64_t> kEmpty;
  auto it = user_index_.find(user);
  return it == user_index_.end() ? kEmpty : it->second;
}

}  // namespace psi
