// The action log L(User, Time, Action) of Section 3: each record states that
// a user performed an action at a time. Invariant maintained throughout the
// library: any given user performs any given action at most once (repeat
// purchases collapse to the first, as the paper specifies).

#ifndef PSI_ACTIONLOG_ACTION_LOG_H_
#define PSI_ACTIONLOG_ACTION_LOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief Dense action identifier in [0, num_actions).
using ActionId = uint32_t;

/// \brief One log record: user `user` performed action `action` at `time`.
struct ActionRecord {
  NodeId user;
  ActionId action;
  uint64_t time;

  bool operator==(const ActionRecord&) const = default;
};

/// \brief An action log owned by one party (or the conceptual union).
class ActionLog {
 public:
  ActionLog() = default;

  /// \brief Appends a record; keeps the earliest record when a (user, action)
  /// pair repeats (the paper counts only the first purchase).
  void Add(const ActionRecord& record);

  /// \brief Appends all records of another log, with the same dedup rule.
  void Merge(const ActionLog& other);

  const std::vector<ActionRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// \brief Time of (user, action), or nullopt-like miss via `found`.
  bool Lookup(NodeId user, ActionId action, uint64_t* time_out) const;

  /// \brief Largest timestamp in the log (0 for an empty log).
  uint64_t MaxTime() const;

  /// \brief Largest action id + 1 (0 for an empty log).
  ActionId MaxActionId() const;

  /// \brief Largest user id + 1 (0 for an empty log).
  NodeId MaxUserId() const;

  /// \brief All records of one action, unsorted.
  std::vector<ActionRecord> RecordsOfAction(ActionId action) const;

  /// \brief Per-user (action -> time) index; built once, reused by counters.
  const std::unordered_map<ActionId, uint64_t>& UserIndex(NodeId user) const;

 private:
  static uint64_t Key(NodeId user, ActionId action) {
    return (static_cast<uint64_t>(user) << 32) | action;
  }

  void InvalidateIndex() { index_built_ = false; }
  void BuildIndex() const;

  std::vector<ActionRecord> records_;
  std::unordered_map<uint64_t, size_t> seen_;  // (user, action) -> record idx

  // Lazily built per-user indices.
  mutable bool index_built_ = false;
  mutable std::unordered_map<NodeId, std::unordered_map<ActionId, uint64_t>>
      user_index_;
};

}  // namespace psi

#endif  // PSI_ACTIONLOG_ACTION_LOG_H_
