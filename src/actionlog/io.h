// Text serialization of action logs, so providers can load real activity
// exports.
//
// Format (one record per line, '#' comments allowed):
//   <user> <action> <time>

#ifndef PSI_ACTIONLOG_IO_H_
#define PSI_ACTIONLOG_IO_H_

#include <iosfwd>
#include <string>

#include "actionlog/action_log.h"
#include "common/status.h"

namespace psi {

/// \brief Writes the log to a stream (one "user action time" line each).
[[nodiscard]] Status WriteActionLogText(const ActionLog& log, std::ostream* out);

/// \brief Reads a log from a stream (duplicates collapse per the at-most-
/// once rule).
[[nodiscard]] Result<ActionLog> ReadActionLogText(std::istream* in);

/// \brief File conveniences.
[[nodiscard]] Status SaveActionLog(const ActionLog& log, const std::string& path);
[[nodiscard]] Result<ActionLog> LoadActionLog(const std::string& path);

}  // namespace psi

#endif  // PSI_ACTIONLOG_IO_H_
