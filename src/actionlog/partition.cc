#include "actionlog/partition.h"

#include <algorithm>

namespace psi {

Result<std::vector<ActionLog>> ExclusivePartition(Rng* rng,
                                                  const ActionLog& log,
                                                  size_t num_providers) {
  if (num_providers == 0) {
    return Status::InvalidArgument("need at least one provider");
  }
  ActionId num_actions = log.MaxActionId();
  std::vector<size_t> owner(num_actions);
  for (auto& o : owner) o = rng->UniformU64(num_providers);

  std::vector<ActionLog> logs(num_providers);
  for (const auto& r : log.records()) {
    logs[owner[r.action]].Add(r);
  }
  return logs;
}

Status ActionClassConfig::Validate(size_t num_providers) const {
  if (provider_groups.empty()) {
    return Status::InvalidArgument("no action classes");
  }
  for (const auto& group : provider_groups) {
    if (group.empty()) {
      return Status::InvalidArgument("empty provider group");
    }
    for (size_t p : group) {
      if (p >= num_providers) {
        return Status::OutOfRange("provider index out of range");
      }
    }
  }
  for (uint32_t q : class_of_action) {
    if (q >= provider_groups.size()) {
      return Status::OutOfRange("action class out of range");
    }
  }
  return Status::OK();
}

Result<ActionClassConfig> ActionClassConfig::Random(
    Rng* rng, size_t num_actions, size_t num_classes, size_t num_providers,
    size_t min_group, size_t max_group) {
  if (num_classes == 0 || num_providers == 0) {
    return Status::InvalidArgument("classes and providers must be positive");
  }
  if (min_group == 0 || min_group > max_group || max_group > num_providers) {
    return Status::InvalidArgument("bad group size bounds");
  }
  ActionClassConfig cfg;
  cfg.class_of_action.resize(num_actions);
  for (auto& q : cfg.class_of_action) {
    q = static_cast<uint32_t>(rng->UniformU64(num_classes));
  }
  cfg.provider_groups.resize(num_classes);
  for (auto& group : cfg.provider_groups) {
    size_t size = min_group + rng->UniformU64(max_group - min_group + 1);
    std::vector<size_t> all = rng->Permutation(num_providers);
    group.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(size));
    std::sort(group.begin(), group.end());
  }
  return cfg;
}

Result<std::vector<ActionLog>> NonExclusivePartition(
    Rng* rng, const ActionLog& log, size_t num_providers,
    const ActionClassConfig& config) {
  PSI_RETURN_NOT_OK(config.Validate(num_providers));
  ActionId num_actions = log.MaxActionId();
  if (config.class_of_action.size() < num_actions) {
    return Status::InvalidArgument("config does not cover all actions");
  }
  std::vector<ActionLog> logs(num_providers);
  for (const auto& r : log.records()) {
    const auto& group = config.provider_groups[config.class_of_action[r.action]];
    size_t provider = group[rng->UniformU64(group.size())];
    logs[provider].Add(r);
  }
  return logs;
}

}  // namespace psi
