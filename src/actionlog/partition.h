// Distribution of the unified log across service providers.
//
// Exclusive case (Section 5.1): every action is supported by exactly one
// provider — all of its records land in one log.
//
// Non-exclusive case (Section 5.2): actions belong to classes A_q (books,
// movies, petitions, ...); each class is supported by a provider group P_q,
// and each record of a class-q action lands at one provider from P_q
// (the user chose where to buy). The propagation trace of one action can
// therefore be scattered across providers, which is exactly the situation
// Protocol 5's preprocessing repairs.

#ifndef PSI_ACTIONLOG_PARTITION_H_
#define PSI_ACTIONLOG_PARTITION_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "common/random.h"
#include "common/status.h"

namespace psi {

/// \brief Splits the log by assigning every action to one uniform provider.
[[nodiscard]] Result<std::vector<ActionLog>> ExclusivePartition(Rng* rng,
                                                  const ActionLog& log,
                                                  size_t num_providers);

/// \brief The public class structure of the non-exclusive case. The classes
/// A_q and groups P_q are known to all players (Section 5.2).
struct ActionClassConfig {
  /// class_of_action[a] = q, the class of action a.
  std::vector<uint32_t> class_of_action;
  /// provider_groups[q] = sorted provider indices supporting class q.
  std::vector<std::vector<size_t>> provider_groups;

  size_t num_classes() const { return provider_groups.size(); }

  /// \brief Validates shape: every class non-empty, every action classed.
  [[nodiscard]] Status Validate(size_t num_providers) const;

  /// \brief Random config: `num_classes` classes, each supported by a
  /// uniformly chosen group of between min_group and max_group providers.
  [[nodiscard]] static Result<ActionClassConfig> Random(Rng* rng, size_t num_actions,
                                          size_t num_classes,
                                          size_t num_providers,
                                          size_t min_group, size_t max_group);
};

/// \brief Splits the log per the class structure: each record of a class-q
/// action goes to a uniformly random provider in P_q.
[[nodiscard]] Result<std::vector<ActionLog>> NonExclusivePartition(
    Rng* rng, const ActionLog& log, size_t num_providers,
    const ActionClassConfig& config);

}  // namespace psi

#endif  // PSI_ACTIONLOG_PARTITION_H_
