#include "actionlog/counters.h"

#include <cmath>

#include "common/logging.h"

namespace psi {

std::vector<uint64_t> ComputeActionCounts(const ActionLog& log,
                                          size_t num_users) {
  std::vector<uint64_t> a(num_users, 0);
  for (const auto& r : log.records()) {
    if (r.user < num_users) ++a[r.user];
  }
  return a;
}

std::vector<uint64_t> ComputeFollowCounts(const ActionLog& log,
                                          const std::vector<Arc>& pairs,
                                          uint64_t h) {
  std::vector<uint64_t> b(pairs.size(), 0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& i_actions = log.UserIndex(pairs[p].from);
    const auto& j_actions = log.UserIndex(pairs[p].to);
    // Iterate over the smaller index for speed; membership test on the other.
    if (i_actions.size() <= j_actions.size()) {
      for (const auto& [action, ti] : i_actions) {
        auto it = j_actions.find(action);
        if (it != j_actions.end() && it->second > ti &&
            it->second <= ti + h) {
          ++b[p];
        }
      }
    } else {
      for (const auto& [action, tj] : j_actions) {
        auto it = i_actions.find(action);
        if (it != i_actions.end() && tj > it->second &&
            tj <= it->second + h) {
          ++b[p];
        }
      }
    }
  }
  return b;
}

std::vector<std::vector<uint64_t>> ComputeExactDelayCounts(
    const ActionLog& log, const std::vector<Arc>& pairs, uint64_t h) {
  std::vector<std::vector<uint64_t>> c(pairs.size(),
                                       std::vector<uint64_t>(h, 0));
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& i_actions = log.UserIndex(pairs[p].from);
    const auto& j_actions = log.UserIndex(pairs[p].to);
    for (const auto& [action, ti] : i_actions) {
      auto it = j_actions.find(action);
      if (it != j_actions.end() && it->second > ti && it->second <= ti + h) {
        ++c[p][it->second - ti - 1];
      }
    }
  }
  return c;
}

TemporalWeights TemporalWeights::Uniform(uint64_t h) {
  PSI_CHECK(h > 0) << "window width must be positive";
  TemporalWeights tw;
  tw.w.assign(h, 1.0);
  return tw;
}

TemporalWeights TemporalWeights::LinearDecay(uint64_t h) {
  PSI_CHECK(h > 0) << "window width must be positive";
  TemporalWeights tw;
  tw.w.resize(h);
  double sum = 0.0;
  for (uint64_t l = 0; l < h; ++l) {
    tw.w[l] = static_cast<double>(h - l);
    sum += tw.w[l];
  }
  for (auto& x : tw.w) x *= static_cast<double>(h) / sum;
  return tw;
}

TemporalWeights TemporalWeights::ExponentialDecay(uint64_t h, double rate) {
  PSI_CHECK(h > 0) << "window width must be positive";
  PSI_CHECK(rate >= 0.0) << "decay rate must be non-negative";
  TemporalWeights tw;
  tw.w.resize(h);
  double sum = 0.0;
  for (uint64_t l = 0; l < h; ++l) {
    tw.w[l] = std::exp(-rate * static_cast<double>(l));
    sum += tw.w[l];
  }
  for (auto& x : tw.w) x *= static_cast<double>(h) / sum;
  return tw;
}

std::vector<uint64_t> TemporalWeights::Scaled(uint64_t scale) const {
  std::vector<uint64_t> out(w.size());
  for (size_t l = 0; l < w.size(); ++l) {
    out[l] = static_cast<uint64_t>(std::llround(w[l] * static_cast<double>(scale)));
  }
  return out;
}

std::vector<double> ComputeWeightedFollowCounts(
    const ActionLog& log, const std::vector<Arc>& pairs,
    const TemporalWeights& weights) {
  auto c = ComputeExactDelayCounts(log, pairs, weights.h());
  std::vector<double> out(pairs.size(), 0.0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    for (uint64_t l = 0; l < weights.h(); ++l) {
      out[p] += weights.w[l] * static_cast<double>(c[p][l]);
    }
  }
  return out;
}

}  // namespace psi
