#include "actionlog/generator.h"

#include <queue>
#include <unordered_map>

namespace psi {

GroundTruthInfluence GroundTruthInfluence::Uniform(const SocialGraph& graph,
                                                   double p) {
  GroundTruthInfluence t;
  t.prob.assign(graph.num_arcs(), p);
  return t;
}

GroundTruthInfluence GroundTruthInfluence::Random(Rng* rng,
                                                  const SocialGraph& graph,
                                                  double lo, double hi) {
  GroundTruthInfluence t;
  t.prob.resize(graph.num_arcs());
  for (auto& p : t.prob) p = rng->UniformReal(lo, hi);
  return t;
}

Result<ActionLog> GenerateCascades(Rng* rng, const SocialGraph& graph,
                                   const GroundTruthInfluence& truth,
                                   const CascadeParams& params) {
  if (truth.prob.size() != graph.num_arcs()) {
    return Status::InvalidArgument(
        "ground truth size does not match arc count");
  }
  if (params.seeds_per_action == 0 || params.max_delay == 0) {
    return Status::InvalidArgument("seeds and max_delay must be positive");
  }
  const size_t n = graph.num_nodes();
  if (params.seeds_per_action > n) {
    return Status::InvalidArgument("more seeds than users");
  }

  // Arc index lookup so cascades can read per-arc probabilities.
  std::unordered_map<uint64_t, size_t> arc_index;
  arc_index.reserve(graph.num_arcs());
  for (size_t k = 0; k < graph.num_arcs(); ++k) {
    const Arc& a = graph.arcs()[k];
    arc_index.emplace((static_cast<uint64_t>(a.from) << 32) | a.to, k);
  }

  ActionLog log;
  std::vector<uint64_t> adoption_time(n);
  std::vector<bool> adopted(n);
  for (ActionId action = 0; action < params.num_actions; ++action) {
    std::fill(adopted.begin(), adopted.end(), false);
    // Event queue ordered by adoption time.
    using Event = std::pair<uint64_t, NodeId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    for (size_t s = 0; s < params.seeds_per_action; ++s) {
      auto seed = static_cast<NodeId>(rng->UniformU64(n));
      uint64_t t0 = rng->UniformU64(params.start_time_span);
      events.push({t0, seed});
    }

    while (!events.empty()) {
      auto [t, u] = events.top();
      events.pop();
      if (adopted[u]) continue;  // First adoption wins.
      adopted[u] = true;
      adoption_time[u] = t;
      log.Add(ActionRecord{u, action, t});
      for (NodeId v : graph.OutNeighbors(u)) {
        if (adopted[v]) continue;
        size_t k = arc_index.at((static_cast<uint64_t>(u) << 32) | v);
        if (rng->Bernoulli(truth.prob[k])) {
          uint64_t delay = 1 + rng->UniformU64(params.max_delay);
          events.push({t + delay, v});
        }
      }
    }
  }
  return log;
}

}  // namespace psi
