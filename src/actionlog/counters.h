// The plaintext counters of Section 3.1 — the quantities the MPC protocols
// compute shares of:
//   a_i      : number of actions user v_i performed,
//   b^h_ij   : number of actions where v_j followed v_i within h time steps,
//   c^l_ij   : number of actions where v_j followed v_i after exactly l steps.
//
// Convention (see DESIGN.md): "followed within h" means t_i < t_j <= t_i + h,
// strictly after (Definition 3.1 requires Delta t > 0). These satisfy
// b^h_ij = sum_{l=1..h} c^l_ij, which the property tests assert.

#ifndef PSI_ACTIONLOG_COUNTERS_H_
#define PSI_ACTIONLOG_COUNTERS_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief a_i for every user 0..num_users-1.
std::vector<uint64_t> ComputeActionCounts(const ActionLog& log,
                                          size_t num_users);

/// \brief b^h_ij for each requested (i, j) pair, in pair order.
std::vector<uint64_t> ComputeFollowCounts(const ActionLog& log,
                                          const std::vector<Arc>& pairs,
                                          uint64_t h);

/// \brief c^l_ij for each pair, as pairs.size() x h values: out[p][l-1] is
/// the exact-delay-l count of pair p.
std::vector<std::vector<uint64_t>> ComputeExactDelayCounts(
    const ActionLog& log, const std::vector<Arc>& pairs, uint64_t h);

/// \brief Temporal weights w_1..w_h for the Eq. (2) influence definition.
/// The paper constrains 0 < w_l and sum w_l = h (Eq. 1 is w_l = 1).
struct TemporalWeights {
  std::vector<double> w;

  /// \brief w_l = 1 for all l — reduces Eq. (2) to Eq. (1).
  static TemporalWeights Uniform(uint64_t h);

  /// \brief Linearly decaying weights, normalized to sum h.
  static TemporalWeights LinearDecay(uint64_t h);

  /// \brief Exponentially decaying weights w_l ~ exp(-rate*(l-1)),
  /// normalized to sum h.
  static TemporalWeights ExponentialDecay(uint64_t h, double rate);

  uint64_t h() const { return w.size(); }

  /// \brief Fixed-point integer weights round(w_l * scale): the secure
  /// pipeline works on integers, so Eq. (2) numerators are aggregated as
  /// sum_l W_l c^l and descaled after division (Section 5.1 variant).
  std::vector<uint64_t> Scaled(uint64_t scale) const;
};

/// \brief Eq. (2) weighted numerator sum_l w_l c^l_ij for each pair.
std::vector<double> ComputeWeightedFollowCounts(
    const ActionLog& log, const std::vector<Arc>& pairs,
    const TemporalWeights& weights);

}  // namespace psi

#endif  // PSI_ACTIONLOG_COUNTERS_H_
