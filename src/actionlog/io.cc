#include "actionlog/io.h"

#include <fstream>
#include <sstream>

namespace psi {

Status WriteActionLogText(const ActionLog& log, std::ostream* out) {
  *out << "# psi action log: user action time\n";
  for (const auto& r : log.records()) {
    *out << r.user << " " << r.action << " " << r.time << "\n";
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<ActionLog> ReadActionLogText(std::istream* in) {
  ActionLog log;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    uint64_t user = 0, action = 0, time = 0;
    if (!(fields >> user >> action >> time)) {
      return Status::SerializationError("bad record at line " +
                                        std::to_string(line_no));
    }
    if (user > UINT32_MAX || action > UINT32_MAX) {
      return Status::OutOfRange("id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    log.Add(ActionRecord{static_cast<NodeId>(user),
                         static_cast<ActionId>(action), time});
  }
  return log;
}

Status SaveActionLog(const ActionLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  return WriteActionLogText(log, &out);
}

Result<ActionLog> LoadActionLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  return ReadActionLogText(&in);
}

}  // namespace psi
