// Modular arithmetic over BigUInt: the share algebra of Protocols 1-2 and the
// group operations behind RSA and Paillier.

#ifndef PSI_BIGINT_MODULAR_H_
#define PSI_BIGINT_MODULAR_H_

#include "bigint/biguint.h"
#include "common/status.h"

namespace psi {

/// \brief (a + b) mod m. Preconditions: a, b < m.
BigUInt ModAdd(const BigUInt& a, const BigUInt& b, const BigUInt& m);

/// \brief (a - b) mod m. Preconditions: a, b < m.
BigUInt ModSub(const BigUInt& a, const BigUInt& b, const BigUInt& m);

/// \brief (a * b) mod m.
BigUInt ModMul(const BigUInt& a, const BigUInt& b, const BigUInt& m);

/// \brief a^e mod m by left-to-right square-and-multiply. m > 0; 0^0 == 1.
BigUInt ModPow(const BigUInt& base, const BigUInt& exp, const BigUInt& m);

/// \brief RAII guard: while an instance lives, Montgomery contexts built
/// anywhere in the process with EngineMode::kAuto (ModPow's cache, Paillier
/// randomizer pools, ParallelFor workers) stay heap-only instead of
/// attaching the fixed-width engine. Heap-only contexts are cached
/// separately, so repeated calls still amortize setup — the measured delta
/// is purely engine vs heap arithmetic. Benchmarks (BM_*Heap) and the
/// differential tests use this; production code never should, and only one
/// guard owner at a time (the flag is process-wide).
class ScopedHeapOnlyModPow {
 public:
  ScopedHeapOnlyModPow();
  ~ScopedHeapOnlyModPow();
  ScopedHeapOnlyModPow(const ScopedHeapOnlyModPow&) = delete;
  ScopedHeapOnlyModPow& operator=(const ScopedHeapOnlyModPow&) = delete;

 private:
  bool prev_;
};

/// \brief Greatest common divisor (binary-free classic Euclid).
BigUInt Gcd(BigUInt a, BigUInt b);

/// \brief Least common multiple; 0 if either argument is 0.
BigUInt Lcm(const BigUInt& a, const BigUInt& b);

/// \brief Multiplicative inverse of a modulo m (extended Euclid).
///
/// Returns InvalidArgument if gcd(a, m) != 1 or m < 2.
[[nodiscard]] Result<BigUInt> ModInverse(const BigUInt& a, const BigUInt& m);

}  // namespace psi

#endif  // PSI_BIGINT_MODULAR_H_
