// Primality testing and prime generation for the RSA / Paillier key material
// used by Protocol 6 (and the homomorphic extension protocol).

#ifndef PSI_BIGINT_PRIMES_H_
#define PSI_BIGINT_PRIMES_H_

#include "bigint/biguint.h"
#include "common/random.h"

namespace psi {

/// \brief Miller-Rabin probabilistic primality test.
///
/// Runs trial division by small primes first, then `rounds` random-base
/// Miller-Rabin rounds (error probability <= 4^-rounds for composites).
bool IsProbablePrime(const BigUInt& n, Rng* rng, int rounds = 32);

/// \brief Uniform random prime with exactly `bits` bits (top bit set).
///
/// Candidates are random odd integers with the two top bits set (so products
/// of two such primes have exactly 2*bits bits, as RSA key sizing expects).
BigUInt RandomPrime(Rng* rng, size_t bits, int mr_rounds = 32);

/// \brief Smallest probable prime >= n.
BigUInt NextPrime(BigUInt n, Rng* rng, int mr_rounds = 32);

}  // namespace psi

#endif  // PSI_BIGINT_PRIMES_H_
