// Montgomery modular arithmetic: the workhorse behind the RSA/Paillier
// operations of Protocol 6 and the OT variant. Replacing every "multiply,
// then Knuth-divide" reduction with word-level REDC makes modular
// exponentiation several times faster for the 512-2048 bit odd moduli the
// crypto layer uses. ModPow (bigint/modular.h) routes through this context
// automatically for odd multi-limb moduli; the generic path remains for
// even ones.

#ifndef PSI_BIGINT_MONTGOMERY_H_
#define PSI_BIGINT_MONTGOMERY_H_

#include "bigint/biguint.h"
#include "common/status.h"

namespace psi {

/// \brief Precomputed Montgomery domain for one odd modulus.
class MontgomeryContext {
 public:
  /// \brief Builds the context. Returns InvalidArgument for even or < 3
  /// moduli.
  static Result<MontgomeryContext> Create(const BigUInt& modulus);

  const BigUInt& modulus() const { return n_; }

  /// \brief Maps a value (< modulus) into the Montgomery domain: a*R mod n.
  BigUInt ToMontgomery(const BigUInt& a) const;

  /// \brief Maps back: a*R^-1 mod n.
  BigUInt FromMontgomery(const BigUInt& a) const;

  /// \brief Montgomery product: REDC(a * b) = a*b*R^-1 mod n, for a, b in
  /// the Montgomery domain.
  BigUInt Multiply(const BigUInt& a, const BigUInt& b) const;

  /// \brief base^exp mod n via square-and-multiply in the Montgomery
  /// domain. `base` is an ordinary residue (reduced internally).
  BigUInt Pow(const BigUInt& base, const BigUInt& exp) const;

 private:
  MontgomeryContext(BigUInt n, uint64_t n_prime, BigUInt r_mod_n,
                    BigUInt r2_mod_n, size_t limbs)
      : n_(std::move(n)),
        n_prime_(n_prime),
        r_mod_n_(std::move(r_mod_n)),
        r2_mod_n_(std::move(r2_mod_n)),
        limbs_(limbs) {}

  /// REDC over the limb vector of t (t < n*R): returns t*R^-1 mod n.
  BigUInt Reduce(const BigUInt& t) const;

  BigUInt n_;
  uint64_t n_prime_;   // -n^{-1} mod 2^64.
  BigUInt r_mod_n_;    // R mod n (the Montgomery form of 1).
  BigUInt r2_mod_n_;   // R^2 mod n (for ToMontgomery).
  size_t limbs_;       // k: R = 2^(64k).
};

}  // namespace psi

#endif  // PSI_BIGINT_MONTGOMERY_H_
