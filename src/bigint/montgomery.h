// Montgomery modular arithmetic: the workhorse behind the RSA/Paillier
// operations of Protocol 6 and the OT variant. Replacing every "multiply,
// then Knuth-divide" reduction with word-level REDC makes modular
// exponentiation several times faster for the 512-2048 bit odd moduli the
// crypto layer uses. ModPow (bigint/modular.h) routes through this context
// automatically for odd multi-limb moduli; the generic path remains for
// even ones.
//
// When the modulus width exactly matches an instantiated fixed-width
// geometry (fixed_mont.h), the context transparently attaches a
// FixedMontEngine and every Multiply/Pow runs on stack-allocated
// compile-time-unrolled limb kernels instead of heap BigUInt REDC — same R,
// same values, only faster. EngineMode::kHeapOnly keeps the heap path for
// baseline benchmarking and differential tests.

#ifndef PSI_BIGINT_MONTGOMERY_H_
#define PSI_BIGINT_MONTGOMERY_H_

#include <memory>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/fixed_mont.h"
#include "common/status.h"

namespace psi {

/// \brief Whether MontgomeryContext::Create may attach the fixed-width
/// engine. kHeapOnly exists for the heap-vs-fixed differential tests and
/// the BM_*Heap baseline benches; production callers use the default.
enum class EngineMode {
  kAuto,      ///< Attach a FixedMontEngine when the width matches.
  kHeapOnly,  ///< Always use heap BigUInt REDC.
};

namespace internal {
/// Process-wide flag behind ScopedHeapOnlyModPow (bigint/modular.h): while
/// true, Create(EngineMode::kAuto) builds heap-only contexts everywhere —
/// including ParallelFor workers — so whole-protocol heap baselines are
/// honest. Bench/test plumbing; not for production code.
bool HeapOnlyEngineForced();
void SetHeapOnlyEngineForced(bool forced);
}  // namespace internal

/// \brief Precomputed Montgomery domain for one odd modulus.
class MontgomeryContext {
 public:
  /// \brief Builds the context. Returns InvalidArgument for even or < 3
  /// moduli.
  [[nodiscard]] static Result<MontgomeryContext> Create(
      const BigUInt& modulus, EngineMode mode = EngineMode::kAuto);

  const BigUInt& modulus() const { return n_; }

  /// \brief Maps a value (< modulus) into the Montgomery domain: a*R mod n.
  BigUInt ToMontgomery(const BigUInt& a) const;

  /// \brief Maps back: a*R^-1 mod n.
  BigUInt FromMontgomery(const BigUInt& a) const;

  /// \brief Montgomery product: REDC(a * b) = a*b*R^-1 mod n, for a, b in
  /// the Montgomery domain.
  BigUInt Multiply(const BigUInt& a, const BigUInt& b) const;

  /// \brief base^exp mod n via fixed-window exponentiation in the
  /// Montgomery domain (2^w odd/even table, window width picked from the
  /// exponent size; plain square-and-multiply for short exponents).
  /// `base` is an ordinary residue (reduced internally).
  BigUInt Pow(const BigUInt& base, const BigUInt& exp) const;

  /// \brief Montgomery form of 1 (R mod n).
  const BigUInt& OneMontgomery() const { return r_mod_n_; }

  /// \brief The attached fixed-width engine, or nullptr on the heap path.
  /// Raw-limb consumers (FixedBaseTable, benches) use this to stay
  /// allocation-free; both paths share R, so domain values interchange.
  const FixedMontEngineBase* fixed_engine() const { return engine_.get(); }

 private:
  MontgomeryContext(BigUInt n, uint64_t n_prime, BigUInt r_mod_n,
                    BigUInt r2_mod_n, size_t limbs,
                    std::shared_ptr<const FixedMontEngineBase> engine)
      : n_(std::move(n)),
        n_prime_(n_prime),
        r_mod_n_(std::move(r_mod_n)),
        r2_mod_n_(std::move(r2_mod_n)),
        limbs_(limbs),
        engine_(std::move(engine)) {}

  /// REDC over the limb vector of t (t < n*R): returns t*R^-1 mod n.
  BigUInt Reduce(const BigUInt& t) const;

  BigUInt n_;
  uint64_t n_prime_;   // -n^{-1} mod 2^64.
  BigUInt r_mod_n_;    // R mod n (the Montgomery form of 1).
  BigUInt r2_mod_n_;   // R^2 mod n (for ToMontgomery).
  size_t limbs_;       // k: R = 2^(64k).
  std::shared_ptr<const FixedMontEngineBase> engine_;  // May be null.
};

/// \brief Precomputed power table for one fixed base: many exponentiations
/// of the same base cost ~bits/w multiplies each and zero squarings.
///
/// Stores base^(d * 2^(w*i)) for every w-bit digit value d and digit
/// position i up to `max_exp_bits`. base^e is then the product of one table
/// entry per nonzero digit of e. The referenced MontgomeryContext must
/// outlive the table. Read-only after construction, so a single table can
/// serve many ParallelFor workers concurrently.
///
/// With a fixed-width engine attached to the context, rows live in one flat
/// limb array and Pow runs entirely on stack buffers — no allocation per
/// exponentiation.
class FixedBaseTable {
 public:
  /// \param ctx Montgomery domain of the modulus (kept by pointer).
  /// \param base the fixed base (reduced mod n internally).
  /// \param max_exp_bits largest exponent bit-length Pow must serve.
  /// \param window_bits digit width w (clamped to [1, 8]); 0 picks a
  ///        default balancing table build cost against per-Pow savings.
  FixedBaseTable(const MontgomeryContext* ctx, const BigUInt& base,
                 size_t max_exp_bits, size_t window_bits = 0);

  /// \brief base^exp mod n. Exponents longer than max_exp_bits fall back to
  /// the context's generic Pow.
  BigUInt Pow(const BigUInt& exp) const;

  size_t max_exp_bits() const { return max_exp_bits_; }
  size_t window_bits() const { return window_; }

 private:
  const MontgomeryContext* ctx_;
  BigUInt base_;         // Ordinary residue, for the fallback path.
  size_t max_exp_bits_;
  size_t window_;
  // Heap path: table_[i][d-1] = base^(d << (w*i)) in Montgomery form,
  // d in [1, 2^w).
  std::vector<std::vector<BigUInt>> table_;
  // Engine path: the same entries as raw limbs, row i at stride
  // (2^w - 1) * limbs, entry d-1 at offset (d-1) * limbs within the row.
  std::vector<uint64_t> fixed_rows_;
};

}  // namespace psi

#endif  // PSI_BIGINT_MONTGOMERY_H_
