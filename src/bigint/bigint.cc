#include "bigint/bigint.h"

#include "common/logging.h"

namespace psi {

Result<BigInt> BigInt::FromDecimalString(std::string_view s) {
  bool neg = false;
  if (!s.empty() && s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  PSI_ASSIGN_OR_RETURN(BigUInt mag, BigUInt::FromDecimalString(s));
  return BigInt(std::move(mag), neg);
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  if (negative_ == rhs.negative_) {
    return BigInt(magnitude_ + rhs.magnitude_, negative_);
  }
  // Opposite signs: result takes the sign of the larger magnitude.
  if (magnitude_ >= rhs.magnitude_) {
    return BigInt(magnitude_ - rhs.magnitude_, negative_);
  }
  return BigInt(rhs.magnitude_ - magnitude_, rhs.negative_);
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  return BigInt(magnitude_ * rhs.magnitude_, negative_ != rhs.negative_);
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  PSI_CHECK(!rhs.IsZero()) << "BigInt division by zero";
  return BigInt(magnitude_ / rhs.magnitude_, negative_ != rhs.negative_);
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  PSI_CHECK(!rhs.IsZero()) << "BigInt modulo by zero";
  return BigInt(magnitude_ % rhs.magnitude_, negative_);
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (negative_ != rhs.negative_) {
    return negative_ ? std::strong_ordering::less
                     : std::strong_ordering::greater;
  }
  auto mag = magnitude_ <=> rhs.magnitude_;
  if (!negative_) return mag;
  // Both negative: larger magnitude means smaller value.
  if (mag == std::strong_ordering::less) return std::strong_ordering::greater;
  if (mag == std::strong_ordering::greater) return std::strong_ordering::less;
  return std::strong_ordering::equal;
}

BigUInt BigInt::Mod(const BigUInt& m) const {
  PSI_CHECK(!m.IsZero()) << "modulus must be positive";
  BigUInt r = magnitude_ % m;
  if (negative_ && !r.IsZero()) r = m - r;
  return r;
}

Result<int64_t> BigInt::ToInt64() const {
  PSI_ASSIGN_OR_RETURN(uint64_t mag, magnitude_.ToUint64());
  if (!negative_) {
    if (mag > static_cast<uint64_t>(INT64_MAX)) {
      return Status::OutOfRange("value exceeds int64 range");
    }
    return static_cast<int64_t>(mag);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX) + 1) {
    return Status::OutOfRange("value below int64 range");
  }
  if (mag == static_cast<uint64_t>(INT64_MAX) + 1) return INT64_MIN;
  return -static_cast<int64_t>(mag);
}

std::string BigInt::ToDecimalString() const {
  std::string s = magnitude_.ToDecimalString();
  return negative_ ? "-" + s : s;
}

void WriteBigInt(BinaryWriter* w, const BigInt& v) {
  w->WriteU8(v.IsNegative() ? 1 : 0);
  WriteBigUInt(w, v.magnitude());
}

Status ReadBigInt(BinaryReader* r, BigInt* out) {
  uint8_t sign;
  PSI_RETURN_NOT_OK(r->ReadU8(&sign));
  if (sign > 1) return Status::SerializationError("invalid BigInt sign byte");
  BigUInt mag;
  PSI_RETURN_NOT_OK(ReadBigUInt(r, &mag));
  *out = BigInt(std::move(mag), sign == 1);
  return Status::OK();
}

}  // namespace psi
