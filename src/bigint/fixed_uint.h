// FixedUInt<Limbs>: a stack-allocated unsigned integer of compile-time
// width. Where BigUInt pays heap limbs, dynamic sizing, and runtime loop
// bounds, FixedUInt is a plain array whose add/sub/mul/REDC loops unroll at
// compile time (limb_kernel.h). It deliberately has no growing arithmetic —
// widths are part of the type, overflow is the caller's contract — because
// its one job is to be the operand representation inside the fixed-width
// Montgomery engine (fixed_mont.h). Conversions to/from BigUInt happen only
// at the API boundary.

#ifndef PSI_BIGINT_FIXED_UINT_H_
#define PSI_BIGINT_FIXED_UINT_H_

#include <cstddef>
#include <cstdint>

#include "bigint/biguint.h"
#include "bigint/limb_kernel.h"
#include "common/logging.h"

namespace psi {

/// \brief Fixed-width little-endian unsigned integer (Limbs x 64 bits),
/// value-type semantics, no allocation anywhere.
template <size_t Limbs>
class FixedUInt {
  static_assert(Limbs > 0, "FixedUInt needs at least one limb");

 public:
  static constexpr size_t kLimbs = Limbs;
  static constexpr size_t kBits = Limbs * 64;

  constexpr FixedUInt() : limbs_{} {}

  /// \brief True when v's significant limbs fit this width.
  static bool Fits(const BigUInt& v) { return v.num_limbs() <= Limbs; }

  /// \brief Converts from BigUInt. Precondition: Fits(v).
  static FixedUInt FromBigUInt(const BigUInt& v) {
    PSI_DCHECK(Fits(v));
    FixedUInt out;
    for (size_t i = 0; i < Limbs; ++i) out.limbs_[i] = v.limb(i);
    return out;
  }

  BigUInt ToBigUInt() const { return BigUInt::FromLimbs(limbs_, Limbs); }

  uint64_t limb(size_t i) const { return limbs_[i]; }
  uint64_t* data() { return limbs_; }
  const uint64_t* data() const { return limbs_; }

  bool IsZero() const {
    for (size_t i = 0; i < Limbs; ++i) {
      if (limbs_[i] != 0) return false;
    }
    return true;
  }

  /// \brief out = a + b (mod 2^kBits); returns the carry out (0 or 1).
  static uint64_t Add(const FixedUInt& a, const FixedUInt& b, FixedUInt* out) {
    return limb_kernel::AddFixed<Limbs>(a.limbs_, b.limbs_, out->limbs_);
  }

  /// \brief out = a - b (mod 2^kBits); returns the borrow out (0 or 1).
  static uint64_t Sub(const FixedUInt& a, const FixedUInt& b, FixedUInt* out) {
    return limb_kernel::SubFixed<Limbs>(a.limbs_, b.limbs_, out->limbs_);
  }

  /// \brief Three-way compare (-1, 0, 1).
  static int Compare(const FixedUInt& a, const FixedUInt& b) {
    return limb_kernel::CompareFixed<Limbs>(a.limbs_, b.limbs_);
  }

  /// \brief Full-width product: out = a * b over 2*Limbs limbs, no overflow
  /// possible.
  static void MulFull(const FixedUInt& a, const FixedUInt& b,
                      FixedUInt<2 * Limbs>* out) {
    limb_kernel::MulFixed<Limbs>(a.limbs_, b.limbs_, out->data());
  }

  bool operator==(const FixedUInt& rhs) const {
    return Compare(*this, rhs) == 0;
  }

 private:
  uint64_t limbs_[Limbs];
};

}  // namespace psi

#endif  // PSI_BIGINT_FIXED_UINT_H_
