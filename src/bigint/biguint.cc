#include "bigint/biguint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "bigint/limb_kernel.h"
#include "common/logging.h"

namespace psi {

namespace {

__extension__ typedef unsigned __int128 u128;

// Cutover below which MulKaratsuba falls back to schoolbook. Re-tuned after
// the schoolbook base case moved onto the dispatched limb kernels
// (limb_kernel::Mul, BMI2/ADX on x86): BM_BigUIntMul sweep
// (256/1024/4096/16384-bit balanced operands) over thresholds
// {8,16,24,28,32,40,48,64,96}. 8-16 still lose 2-4x to recursion overhead;
// 24-32 now pay ~15% at 4096 bits (the faster mulx base case shrinks what a
// split saves, so splitting down to 16-limb leaves got relatively worse);
// 40-64 tie within noise at every size (4096b: 4.2-4.4us; 16384b: 46-47us)
// and 96 gives back ~10% by running 64-limb schoolbook leaves. The pre- and
// post-kernel sweeps agree on 40 as the smallest value on the plateau, so
// Karatsuba still engages for 2560-bit-plus operands (Paillier n^2 products
// at 2048-bit keys and up).
constexpr size_t kKaratsubaThreshold = 40;  // limbs
constexpr uint64_t kDecChunk = 10000000000000000000ull;  // 10^19
constexpr int kDecChunkDigits = 19;

// The sweep harness overrides the cutover via PSI_KARATSUBA_THRESHOLD; the
// committed default above is what ships. Read once per process.
size_t KaratsubaThreshold() {
  static const size_t kThreshold = [] {
    if (const char* env = std::getenv("PSI_KARATSUBA_THRESHOLD")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 1) return static_cast<size_t>(v);
    }
    return kKaratsubaThreshold;
  }();
  return kThreshold;
}

int HexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Result<BigUInt> BigUInt::FromDecimalString(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  BigUInt v;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t take = std::min<size_t>(static_cast<size_t>(kDecChunkDigits),
                                   s.size() - pos);
    uint64_t chunk = 0;
    uint64_t scale = 1;
    for (size_t i = 0; i < take; ++i) {
      char c = s[pos + i];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("invalid decimal digit");
      }
      chunk = chunk * 10 + static_cast<uint64_t>(c - '0');
      scale *= 10;
    }
    v *= BigUInt(scale);
    v += BigUInt(chunk);
    pos += take;
  }
  return v;
}

Result<BigUInt> BigUInt::FromHexString(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  BigUInt v;
  for (char c : s) {
    int d = HexDigitValue(c);
    if (d < 0) return Status::InvalidArgument("invalid hex digit");
    v <<= 4;
    v += BigUInt(static_cast<uint64_t>(d));
  }
  return v;
}

BigUInt BigUInt::FromLittleEndianBytes(const std::vector<uint8_t>& bytes) {
  BigUInt v;
  v.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    v.limbs_[i / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  v.Normalize();
  return v;
}

BigUInt BigUInt::FromLimbs(const uint64_t* limbs, size_t count) {
  BigUInt v;
  v.limbs_.assign(limbs, limbs + count);
  v.Normalize();
  return v;
}

BigUInt BigUInt::PowerOfTwo(size_t k) {
  BigUInt v;
  v.limbs_.assign(k / 64 + 1, 0);
  v.limbs_.back() = 1ull << (k % 64);
  return v;
}

BigUInt BigUInt::RandomBits(Rng* rng, size_t bits) {
  BigUInt v;
  if (bits == 0) return v;
  size_t limbs = (bits + 63) / 64;
  v.limbs_.resize(limbs);
  for (auto& l : v.limbs_) l = rng->NextU64();
  size_t top_bits = bits % 64;
  if (top_bits != 0) {
    v.limbs_.back() &= (~0ull) >> (64 - top_bits);
  }
  v.Normalize();
  return v;
}

BigUInt BigUInt::RandomBelow(Rng* rng, const BigUInt& bound) {
  PSI_CHECK(!bound.IsZero()) << "RandomBelow requires a positive bound";
  size_t bits = bound.BitLength();
  for (;;) {
    BigUInt candidate = RandomBits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

size_t BigUInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return 64 * limbs_.size() -
         static_cast<size_t>(std::countl_zero(limbs_.back()));
}

bool BigUInt::GetBit(size_t i) const {
  size_t limb_idx = i / 64;
  if (limb_idx >= limbs_.size()) return false;
  return (limbs_[limb_idx] >> (i % 64)) & 1;
}

void BigUInt::SetBit(size_t i) {
  size_t limb_idx = i / 64;
  if (limb_idx >= limbs_.size()) limbs_.resize(limb_idx + 1, 0);
  limbs_[limb_idx] |= 1ull << (i % 64);
}

// -- Addition / subtraction ---------------------------------------------------

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    u128 sum = static_cast<u128>(limbs_[i]) + carry;
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
    if (carry == 0 && i >= rhs.limbs_.size()) break;
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUInt BigUInt::operator+(const BigUInt& rhs) const {
  BigUInt out = *this;
  out += rhs;
  return out;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  PSI_CHECK(*this >= rhs) << "BigUInt subtraction underflow";
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t sub = (i < rhs.limbs_.size()) ? rhs.limbs_[i] : 0;
    u128 lhs_val = static_cast<u128>(limbs_[i]);
    u128 rhs_val = static_cast<u128>(sub) + borrow;
    if (lhs_val >= rhs_val) {
      limbs_[i] = static_cast<uint64_t>(lhs_val - rhs_val);
      borrow = 0;
    } else {
      limbs_[i] =
          static_cast<uint64_t>((static_cast<u128>(1) << 64) + lhs_val - rhs_val);
      borrow = 1;
    }
    if (borrow == 0 && i >= rhs.limbs_.size()) break;
  }
  Normalize();
  return *this;
}

BigUInt BigUInt::operator-(const BigUInt& rhs) const {
  BigUInt out = *this;
  out -= rhs;
  return out;
}

Result<BigUInt> BigUInt::CheckedSub(const BigUInt& rhs) const {
  if (*this < rhs) return Status::OutOfRange("BigUInt subtraction underflow");
  return *this - rhs;
}

// -- Multiplication -----------------------------------------------------------

BigUInt BigUInt::MulSchoolbook(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  if (a.IsZero() || b.IsZero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  // The CPU-dispatched limb kernel (mulx/adcx chains where the CPU has
  // them, __int128 schoolbook otherwise) is the shared base case for
  // BigUInt and FixedUInt multiplies.
  limb_kernel::Mul(a.limbs_.data(), a.limbs_.size(), b.limbs_.data(),
                   b.limbs_.size(), out.limbs_.data());
  out.Normalize();
  return out;
}

BigUInt BigUInt::Slice(size_t lo, size_t hi) const {
  BigUInt out;
  lo = std::min(lo, limbs_.size());
  hi = std::min(hi, limbs_.size());
  if (lo < hi) {
    out.limbs_.assign(limbs_.begin() + static_cast<ptrdiff_t>(lo),
                      limbs_.begin() + static_cast<ptrdiff_t>(hi));
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::MulKaratsuba(const BigUInt& a, const BigUInt& b) {
  const size_t threshold = KaratsubaThreshold();
  if (a.limbs_.size() < threshold || b.limbs_.size() < threshold) {
    return MulSchoolbook(a, b);
  }
  size_t half = std::max(a.limbs_.size(), b.limbs_.size()) / 2;
  BigUInt a0 = a.Slice(0, half), a1 = a.Slice(half, a.limbs_.size());
  BigUInt b0 = b.Slice(0, half), b1 = b.Slice(half, b.limbs_.size());

  BigUInt z0 = MulKaratsuba(a0, b0);
  BigUInt z2 = MulKaratsuba(a1, b1);
  BigUInt z1 = MulKaratsuba(a0 + a1, b0 + b1);
  z1 -= z0;
  z1 -= z2;

  BigUInt out = z2 << (128 * half);
  out += z1 << (64 * half);
  out += z0;
  return out;
}

BigUInt BigUInt::operator*(const BigUInt& rhs) const {
  return MulKaratsuba(*this, rhs);
}

BigUInt& BigUInt::operator*=(const BigUInt& rhs) {
  *this = *this * rhs;
  return *this;
}

// -- Shifts -------------------------------------------------------------------

BigUInt& BigUInt::operator<<=(size_t bits) {
  if (IsZero() || bits == 0) return *this;
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  size_t old_size = limbs_.size();
  limbs_.resize(old_size + limb_shift + (bit_shift != 0 ? 1 : 0), 0);
  for (size_t i = old_size; i-- > 0;) {
    uint64_t lo = limbs_[i];
    if (bit_shift == 0) {
      limbs_[i + limb_shift] = lo;
    } else {
      limbs_[i + limb_shift + 1] |= lo >> (64 - bit_shift);
      limbs_[i + limb_shift] = lo << bit_shift;
    }
  }
  for (size_t i = 0; i < limb_shift; ++i) limbs_[i] = 0;
  Normalize();
  return *this;
}

BigUInt& BigUInt::operator>>=(size_t bits) {
  if (IsZero()) return *this;
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  size_t new_size = limbs_.size() - limb_shift;
  for (size_t i = 0; i < new_size; ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    limbs_[i] = v;
  }
  limbs_.resize(new_size);
  Normalize();
  return *this;
}

BigUInt BigUInt::operator<<(size_t bits) const {
  BigUInt out = *this;
  out <<= bits;
  return out;
}

BigUInt BigUInt::operator>>(size_t bits) const {
  BigUInt out = *this;
  out >>= bits;
  return out;
}

// -- Comparison ---------------------------------------------------------------

std::strong_ordering BigUInt::operator<=>(const BigUInt& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() <=> rhs.limbs_.size();
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

// -- Division (Knuth Algorithm D) ----------------------------------------------

void BigUInt::DivMod(const BigUInt& num, const BigUInt& den, BigUInt* quot,
                     BigUInt* rem) {
  PSI_CHECK(!den.IsZero()) << "BigUInt division by zero";
  if (num < den) {
    if (quot != nullptr) *quot = BigUInt();
    if (rem != nullptr) *rem = num;
    return;
  }

  // Single-limb divisor fast path.
  if (den.limbs_.size() == 1) {
    uint64_t d = den.limbs_[0];
    BigUInt q;
    q.limbs_.assign(num.limbs_.size(), 0);
    u128 carry = 0;
    for (size_t i = num.limbs_.size(); i-- > 0;) {
      u128 cur = (carry << 64) | num.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      carry = cur % d;
    }
    q.Normalize();
    if (quot != nullptr) *quot = std::move(q);
    if (rem != nullptr) *rem = BigUInt(static_cast<uint64_t>(carry));
    return;
  }

  // General case. Normalize so the divisor's top bit is set.
  size_t shift = static_cast<size_t>(std::countl_zero(den.limbs_.back()));
  BigUInt u = num << shift;
  BigUInt v = den << shift;
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;  // u >= v, so this is >= 0.
  u.limbs_.resize(u.limbs_.size() + 1, 0);  // Room for the virtual top limb.

  BigUInt q;
  q.limbs_.assign(m + 1, 0);

  const uint64_t v1 = v.limbs_[n - 1];
  const uint64_t v2 = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    u128 top = (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    u128 qhat = top / v1;
    u128 rhat = top % v1;
    // Correct qhat: it can be at most 2 too large.
    while (qhat >= (static_cast<u128>(1) << 64) ||
           qhat * v2 > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >= (static_cast<u128>(1) << 64)) break;
    }

    // Multiply-and-subtract qhat * v from u[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 prod = qhat * v.limbs_[i] + carry;
      carry = prod >> 64;
      uint64_t plo = static_cast<uint64_t>(prod);
      uint64_t ui = u.limbs_[j + i];
      uint64_t diff = ui - plo - static_cast<uint64_t>(borrow);
      // Borrow occurred iff the true difference is negative.
      borrow = (static_cast<u128>(ui) <
                static_cast<u128>(plo) + borrow)
                   ? 1
                   : 0;
      u.limbs_[j + i] = diff;
    }
    {
      uint64_t ui = u.limbs_[j + n];
      u128 sub = carry + borrow;
      uint64_t diff = ui - static_cast<uint64_t>(sub);
      bool neg = static_cast<u128>(ui) < sub;
      u.limbs_[j + n] = diff;
      if (neg) {
        // qhat was one too large: add v back and decrement qhat.
        --qhat;
        u128 c2 = 0;
        for (size_t i = 0; i < n; ++i) {
          u128 sum = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + c2;
          u.limbs_[j + i] = static_cast<uint64_t>(sum);
          c2 = sum >> 64;
        }
        u.limbs_[j + n] += static_cast<uint64_t>(c2);
      }
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.Normalize();
  if (rem != nullptr) {
    u.limbs_.resize(n);
    u.Normalize();
    *rem = u >> shift;
  }
  if (quot != nullptr) *quot = std::move(q);
}

BigUInt BigUInt::operator/(const BigUInt& rhs) const {
  BigUInt q;
  DivMod(*this, rhs, &q, nullptr);
  return q;
}

BigUInt BigUInt::operator%(const BigUInt& rhs) const {
  BigUInt r;
  DivMod(*this, rhs, nullptr, &r);
  return r;
}

// -- Conversions --------------------------------------------------------------

Result<uint64_t> BigUInt::ToUint64() const {
  if (limbs_.size() > 1) return Status::OutOfRange("value exceeds 64 bits");
  return limbs_.empty() ? 0ull : limbs_[0];
}

double BigUInt::ToDouble() const {
  if (limbs_.empty()) return 0.0;
  size_t bits = BitLength();
  if (bits <= 64) return static_cast<double>(limbs_[0]);
  // Take the top 64 bits as the significand and scale by the exponent.
  BigUInt top = *this >> (bits - 64);
  double mant = static_cast<double>(top.limbs_.empty() ? 0 : top.limbs_[0]);
  return std::ldexp(mant, static_cast<int>(bits) - 64);
}

std::string BigUInt::ToDecimalString() const {
  if (IsZero()) return "0";
  std::string out;
  BigUInt v = *this;
  BigUInt chunk_div(kDecChunk);
  std::vector<uint64_t> chunks;
  while (!v.IsZero()) {
    BigUInt q, r;
    DivMod(v, chunk_div, &q, &r);
    chunks.push_back(r.limbs_.empty() ? 0 : r.limbs_[0]);
    v = std::move(q);
  }
  char buf[32];
  // The most significant chunk prints without leading zeros.
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(chunks.back()));
  out += buf;
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%019llu",
                  static_cast<unsigned long long>(chunks[i]));
    out += buf;
  }
  return out;
}

std::string BigUInt::ToHexString() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      int d = static_cast<int>((limbs_[i] >> (4 * nib)) & 0xf);
      if (!started && d == 0) continue;
      started = true;
      out += kDigits[d];
    }
  }
  return out;
}

std::vector<uint8_t> BigUInt::ToLittleEndianBytes() const {
  std::vector<uint8_t> out;
  if (IsZero()) return out;
  size_t bytes = (BitLength() + 7) / 8;
  out.resize(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<uint8_t>((limbs_[i / 8] >> (8 * (i % 8))) & 0xff);
  }
  return out;
}

size_t BigUInt::SerializedSize() const {
  size_t count = limbs_.size();
  size_t prefix = 1;
  size_t c = count;
  while (c >= 0x80) {
    ++prefix;
    c >>= 7;
  }
  return prefix + 8 * count;
}

double DivideToDouble(const BigUInt& a, const BigUInt& b) {
  if (b.IsZero()) return 0.0;
  if (a.IsZero()) return 0.0;
  // Scale the numerator so the integer quotient keeps >= 64 significant bits,
  // then undo the scale in the exponent.
  BigUInt scaled = a << 128;
  BigUInt q = scaled / b;
  return std::ldexp(q.ToDouble(), -128);
}

Result<BigUInt> BigUIntFromDouble(double d) {
  if (!(d >= 0.0) || std::isinf(d)) {
    return Status::InvalidArgument("BigUIntFromDouble needs finite d >= 0");
  }
  if (d < 1.0) return BigUInt();
  int exp = 0;
  double mant = std::frexp(d, &exp);  // d = mant * 2^exp, mant in [0.5, 1).
  // 53 significand bits as an integer, then shift into place.
  auto sig = static_cast<uint64_t>(std::ldexp(mant, 53));
  BigUInt v(sig);
  int shift = exp - 53;
  if (shift > 0) {
    v <<= static_cast<size_t>(shift);
  } else if (shift < 0) {
    v >>= static_cast<size_t>(-shift);
  }
  return v;
}

void WriteBigUInt(BinaryWriter* w, const BigUInt& v) {
  w->WriteVarU64(v.num_limbs());
  for (size_t i = 0; i < v.num_limbs(); ++i) w->WriteU64(v.limb(i));
}

Status ReadBigUInt(BinaryReader* r, BigUInt* out) {
  uint64_t count;
  // Each limb occupies 8 bytes, so a count the remaining buffer cannot hold
  // is malformed; checking against remaining() (instead of a fixed cap)
  // keeps a tiny buffer from driving a large allocation.
  PSI_RETURN_NOT_OK(r->ReadCount(&count, /*min_bytes_per_element=*/8));
  std::vector<uint8_t> bytes(static_cast<size_t>(count) * 8);
  BigUInt v;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t limb;
    PSI_RETURN_NOT_OK(r->ReadU64(&limb));
    for (size_t b = 0; b < 8; ++b) {
      bytes[static_cast<size_t>(i) * 8 + b] =
          static_cast<uint8_t>((limb >> (8 * b)) & 0xff);
    }
  }
  *out = BigUInt::FromLittleEndianBytes(bytes);
  return Status::OK();
}

}  // namespace psi
