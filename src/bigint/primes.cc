#include "bigint/primes.h"

#include <array>

#include "bigint/modular.h"
#include "common/logging.h"

namespace psi {
namespace {

constexpr std::array<uint64_t, 25> kSmallPrimes = {
    2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41,
    43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97};

// One Miller-Rabin round for witness a: n - 1 = d * 2^s with d odd.
bool MillerRabinRound(const BigUInt& n, const BigUInt& n_minus_1,
                      const BigUInt& d, size_t s, const BigUInt& a) {
  BigUInt x = ModPow(a, d, n);
  if (x.IsOne() || x == n_minus_1) return true;
  for (size_t i = 1; i < s; ++i) {
    x = ModMul(x, x, n);
    if (x == n_minus_1) return true;
    if (x.IsOne()) return false;  // Nontrivial sqrt of 1 => composite.
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigUInt& n, Rng* rng, int rounds) {
  if (n < BigUInt(2)) return false;
  for (uint64_t p : kSmallPrimes) {
    BigUInt bp(p);
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }

  BigUInt n_minus_1 = n - BigUInt(1);
  BigUInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d >>= 1;
    ++s;
  }

  BigUInt two(2);
  BigUInt span = n - BigUInt(4);  // Witnesses drawn from [2, n-2].
  for (int round = 0; round < rounds; ++round) {
    BigUInt a = two + BigUInt::RandomBelow(rng, span + BigUInt(1));
    if (!MillerRabinRound(n, n_minus_1, d, s, a)) return false;
  }
  return true;
}

BigUInt RandomPrime(Rng* rng, size_t bits, int mr_rounds) {
  PSI_CHECK(bits >= 8) << "RandomPrime needs at least 8 bits";
  for (;;) {
    BigUInt candidate = BigUInt::RandomBits(rng, bits);
    candidate.SetBit(bits - 1);  // Exact bit length.
    candidate.SetBit(bits - 2);  // p*q reaches the full 2*bits length.
    candidate.SetBit(0);         // Odd.
    if (IsProbablePrime(candidate, rng, mr_rounds)) return candidate;
  }
}

BigUInt NextPrime(BigUInt n, Rng* rng, int mr_rounds) {
  if (n <= BigUInt(2)) return BigUInt(2);
  if (n.IsEven()) n += BigUInt(1);
  while (!IsProbablePrime(n, rng, mr_rounds)) n += BigUInt(2);
  return n;
}

}  // namespace psi
