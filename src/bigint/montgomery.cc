#include "bigint/montgomery.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace psi {

namespace {

__extension__ typedef unsigned __int128 u128;

// Inverse of an odd 64-bit value modulo 2^64 by Newton-Hensel lifting:
// each step doubles the number of correct low bits.
uint64_t InverseMod2e64(uint64_t odd) {
  uint64_t x = odd;  // Correct to 3 bits (odd*odd == 1 mod 8).
  for (int i = 0; i < 6; ++i) {
    x *= 2 - odd * x;
  }
  return x;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigUInt& modulus) {
  if (modulus.IsEven() || modulus < BigUInt(3)) {
    return Status::InvalidArgument(
        "Montgomery context requires an odd modulus >= 3");
  }
  size_t limbs = modulus.num_limbs();
  uint64_t n_prime = ~InverseMod2e64(modulus.limb(0)) + 1;  // -n^-1 mod 2^64.
  BigUInt r = BigUInt::PowerOfTwo(64 * limbs);
  BigUInt r_mod_n = r % modulus;
  BigUInt r2_mod_n = BigUInt::PowerOfTwo(128 * limbs) % modulus;
  return MontgomeryContext(modulus, n_prime, std::move(r_mod_n),
                           std::move(r2_mod_n), limbs);
}

BigUInt MontgomeryContext::Reduce(const BigUInt& t) const {
  // Word-level REDC (Montgomery 1985). Precondition: t < n * R.
  std::vector<uint64_t> acc(2 * limbs_ + 1, 0);
  for (size_t i = 0; i < t.num_limbs() && i < acc.size(); ++i) {
    acc[i] = t.limb(i);
  }
  for (size_t i = 0; i < limbs_; ++i) {
    uint64_t m = acc[i] * n_prime_;  // mod 2^64 by wrapping.
    uint64_t carry = 0;
    for (size_t j = 0; j < limbs_; ++j) {
      u128 cur = static_cast<u128>(acc[i + j]) +
                 static_cast<u128>(m) * n_.limb(j) + carry;
      acc[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t idx = i + limbs_;
    while (carry != 0) {
      u128 cur = static_cast<u128>(acc[idx]) + carry;
      acc[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  // Result is acc[limbs_ .. 2*limbs_] (the +1 limb catches the final carry).
  std::vector<uint8_t> bytes((limbs_ + 1) * 8);
  for (size_t i = 0; i <= limbs_; ++i) {
    uint64_t limb = acc[limbs_ + i];
    for (size_t b = 0; b < 8; ++b) {
      bytes[i * 8 + b] = static_cast<uint8_t>((limb >> (8 * b)) & 0xff);
    }
  }
  BigUInt result = BigUInt::FromLittleEndianBytes(bytes);
  if (result >= n_) result -= n_;
  return result;
}

BigUInt MontgomeryContext::ToMontgomery(const BigUInt& a) const {
  PSI_DCHECK(a < n_);
  return Reduce(a * r2_mod_n_);
}

BigUInt MontgomeryContext::FromMontgomery(const BigUInt& a) const {
  return Reduce(a);
}

BigUInt MontgomeryContext::Multiply(const BigUInt& a, const BigUInt& b) const {
  return Reduce(a * b);
}

namespace {

// Fixed-window width for a `bits`-bit exponent: chosen so the 2^w - 1 table
// multiplies amortize against the ~bits * (1/2 - 1/w) multiplies the window
// saves over plain square-and-multiply.
size_t WindowBitsFor(size_t bits) {
  if (bits <= 24) return 1;
  if (bits <= 96) return 2;
  if (bits <= 256) return 3;
  if (bits <= 1024) return 4;
  return 5;
}

// The w-bit digit of exp starting at bit position pos (little-endian).
size_t ExpDigit(const BigUInt& exp, size_t pos, size_t w) {
  size_t digit = 0;
  for (size_t j = w; j-- > 0;) {
    digit = (digit << 1) | static_cast<size_t>(exp.GetBit(pos + j));
  }
  return digit;
}

}  // namespace

BigUInt MontgomeryContext::Pow(const BigUInt& base, const BigUInt& exp) const {
  if (n_.IsOne()) return BigUInt();
  BigUInt b_mont = ToMontgomery(base % n_);
  const size_t bits = exp.BitLength();
  const size_t w = WindowBitsFor(bits);
  if (w == 1) {
    BigUInt result = r_mod_n_;  // Montgomery form of 1.
    for (size_t i = bits; i-- > 0;) {
      result = Multiply(result, result);
      if (exp.GetBit(i)) result = Multiply(result, b_mont);
    }
    return FromMontgomery(result);
  }
  // Fixed window: table[d] = base^d in Montgomery form, d < 2^w.
  std::vector<BigUInt> table(size_t{1} << w);
  table[0] = r_mod_n_;
  table[1] = b_mont;
  for (size_t d = 2; d < table.size(); ++d) {
    table[d] = Multiply(table[d - 1], b_mont);
  }
  const size_t digits = (bits + w - 1) / w;
  BigUInt result = table[ExpDigit(exp, (digits - 1) * w, w)];
  for (size_t d = digits - 1; d-- > 0;) {
    for (size_t s = 0; s < w; ++s) result = Multiply(result, result);
    size_t digit = ExpDigit(exp, d * w, w);
    if (digit != 0) result = Multiply(result, table[digit]);
  }
  return FromMontgomery(result);
}

FixedBaseTable::FixedBaseTable(const MontgomeryContext* ctx,
                               const BigUInt& base, size_t max_exp_bits,
                               size_t window_bits)
    : ctx_(ctx), base_(base % ctx->modulus()), max_exp_bits_(max_exp_bits) {
  if (window_bits == 0) {
    // Build cost is (2^w - 1) * ceil(bits/w) multiplies; w = 4 keeps that
    // under ~4 * bits while quartering the per-Pow multiply count.
    window_ = max_exp_bits_ <= 64 ? 2 : 4;
  } else {
    window_ = std::min<size_t>(std::max<size_t>(window_bits, 1), 8);
  }
  const size_t w = window_;
  const size_t digits = (std::max<size_t>(max_exp_bits_, 1) + w - 1) / w;
  table_.resize(digits);
  // t = base^(2^(w*i)) as i advances; each row holds t^1 .. t^(2^w - 1).
  BigUInt t = ctx_->ToMontgomery(base_);
  for (size_t i = 0; i < digits; ++i) {
    auto& row = table_[i];
    row.resize((size_t{1} << w) - 1);
    row[0] = t;
    for (size_t d = 1; d < row.size(); ++d) {
      row[d] = ctx_->Multiply(row[d - 1], t);
    }
    if (i + 1 < digits) t = ctx_->Multiply(row.back(), t);  // t^(2^w).
  }
}

BigUInt FixedBaseTable::Pow(const BigUInt& exp) const {
  if (exp.BitLength() > max_exp_bits_) return ctx_->Pow(base_, exp);
  const size_t w = window_;
  BigUInt result = ctx_->OneMontgomery();
  const size_t digits = (exp.BitLength() + w - 1) / w;
  for (size_t i = 0; i < digits; ++i) {
    size_t digit = ExpDigit(exp, i * w, w);
    if (digit != 0) result = ctx_->Multiply(result, table_[i][digit - 1]);
  }
  return ctx_->FromMontgomery(result);
}

}  // namespace psi
