#include "bigint/montgomery.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "bigint/pow_window.h"
#include "common/logging.h"

namespace psi {

namespace internal {

namespace {
// Relaxed is enough: the only writers are bench/test RAII guards that set
// the flag before launching work and restore it after joining.
std::atomic<bool> g_heap_only_engine{false};
}  // namespace

bool HeapOnlyEngineForced() {
  return g_heap_only_engine.load(std::memory_order_relaxed);
}

void SetHeapOnlyEngineForced(bool forced) {
  g_heap_only_engine.store(forced, std::memory_order_relaxed);
}

}  // namespace internal

namespace {

__extension__ typedef unsigned __int128 u128;

// Inverse of an odd 64-bit value modulo 2^64 by Newton-Hensel lifting:
// each step doubles the number of correct low bits.
uint64_t InverseMod2e64(uint64_t odd) {
  uint64_t x = odd;  // Correct to 3 bits (odd*odd == 1 mod 8).
  for (int i = 0; i < 6; ++i) {
    x *= 2 - odd * x;
  }
  return x;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigUInt& modulus,
                                                    EngineMode mode) {
  if (modulus.IsEven() || modulus < BigUInt(3)) {
    return Status::InvalidArgument(
        "Montgomery context requires an odd modulus >= 3");
  }
  size_t limbs = modulus.num_limbs();
  uint64_t n_prime = ~InverseMod2e64(modulus.limb(0)) + 1;  // -n^-1 mod 2^64.
  BigUInt r = BigUInt::PowerOfTwo(64 * limbs);
  BigUInt r_mod_n = r % modulus;
  BigUInt r2_mod_n = BigUInt::PowerOfTwo(128 * limbs) % modulus;
  std::shared_ptr<const FixedMontEngineBase> engine;
  if (mode == EngineMode::kAuto && !internal::HeapOnlyEngineForced()) {
    engine = MakeFixedMontEngine(modulus, n_prime, r_mod_n, r2_mod_n);
  }
  return MontgomeryContext(modulus, n_prime, std::move(r_mod_n),
                           std::move(r2_mod_n), limbs, std::move(engine));
}

BigUInt MontgomeryContext::Reduce(const BigUInt& t) const {
  // Word-level REDC (Montgomery 1985). Precondition: t < n * R.
  std::vector<uint64_t> acc(2 * limbs_ + 1, 0);
  for (size_t i = 0; i < t.num_limbs() && i < acc.size(); ++i) {
    acc[i] = t.limb(i);
  }
  for (size_t i = 0; i < limbs_; ++i) {
    uint64_t m = acc[i] * n_prime_;  // mod 2^64 by wrapping.
    uint64_t carry = 0;
    for (size_t j = 0; j < limbs_; ++j) {
      u128 cur = static_cast<u128>(acc[i + j]) +
                 static_cast<u128>(m) * n_.limb(j) + carry;
      acc[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t idx = i + limbs_;
    while (carry != 0) {
      u128 cur = static_cast<u128>(acc[idx]) + carry;
      acc[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  // Result is acc[limbs_ .. 2*limbs_] (the +1 limb catches the final carry).
  BigUInt result = BigUInt::FromLimbs(acc.data() + limbs_, limbs_ + 1);
  if (result >= n_) result -= n_;
  return result;
}

BigUInt MontgomeryContext::ToMontgomery(const BigUInt& a) const {
  if (engine_) return engine_->ToMontgomery(a);
  PSI_DCHECK(a < n_);
  return Reduce(a * r2_mod_n_);
}

BigUInt MontgomeryContext::FromMontgomery(const BigUInt& a) const {
  if (engine_) return engine_->FromMontgomery(a);
  return Reduce(a);
}

BigUInt MontgomeryContext::Multiply(const BigUInt& a, const BigUInt& b) const {
  if (engine_) return engine_->Multiply(a, b);
  return Reduce(a * b);
}

BigUInt MontgomeryContext::Pow(const BigUInt& base, const BigUInt& exp) const {
  if (n_.IsOne()) return BigUInt();
  if (engine_) return engine_->Pow(base, exp);
  BigUInt b_mont = ToMontgomery(base % n_);
  const size_t bits = exp.BitLength();
  const size_t w = internal::WindowBitsFor(bits);
  if (w == 1) {
    BigUInt result = r_mod_n_;  // Montgomery form of 1.
    for (size_t i = bits; i-- > 0;) {
      result = Multiply(result, result);
      if (exp.GetBit(i)) result = Multiply(result, b_mont);
    }
    return FromMontgomery(result);
  }
  // Fixed window: table[d] = base^d in Montgomery form, d < 2^w.
  std::vector<BigUInt> table(size_t{1} << w);
  table[0] = r_mod_n_;
  table[1] = b_mont;
  for (size_t d = 2; d < table.size(); ++d) {
    table[d] = Multiply(table[d - 1], b_mont);
  }
  const size_t digits = (bits + w - 1) / w;
  BigUInt result = table[internal::ExpDigit(exp, (digits - 1) * w, w)];
  for (size_t d = digits - 1; d-- > 0;) {
    for (size_t s = 0; s < w; ++s) result = Multiply(result, result);
    size_t digit = internal::ExpDigit(exp, d * w, w);
    if (digit != 0) result = Multiply(result, table[digit]);
  }
  return FromMontgomery(result);
}

FixedBaseTable::FixedBaseTable(const MontgomeryContext* ctx,
                               const BigUInt& base, size_t max_exp_bits,
                               size_t window_bits)
    : ctx_(ctx), base_(base % ctx->modulus()), max_exp_bits_(max_exp_bits) {
  if (window_bits == 0) {
    // Build cost is (2^w - 1) * ceil(bits/w) multiplies; w = 4 keeps that
    // under ~4 * bits while quartering the per-Pow multiply count.
    window_ = max_exp_bits_ <= 64 ? 2 : 4;
  } else {
    window_ = std::min<size_t>(std::max<size_t>(window_bits, 1), 8);
  }
  const size_t w = window_;
  const size_t digits = (std::max<size_t>(max_exp_bits_, 1) + w - 1) / w;
  const size_t row_entries = (size_t{1} << w) - 1;
  if (const FixedMontEngineBase* eng = ctx_->fixed_engine()) {
    // Engine path: identical entries, flat raw-limb storage, and the whole
    // build runs on stack buffers through the fixed kernels.
    const size_t limbs = eng->limbs();
    fixed_rows_.resize(digits * row_entries * limbs);
    uint64_t t[kMaxFixedMontLimbs];
    uint64_t base_raw[kMaxFixedMontLimbs];
    for (size_t i = 0; i < limbs; ++i) base_raw[i] = base_.limb(i);
    eng->ToMontRaw(base_raw, t);
    for (size_t i = 0; i < digits; ++i) {
      uint64_t* row = fixed_rows_.data() + i * row_entries * limbs;
      for (size_t j = 0; j < limbs; ++j) row[j] = t[j];
      for (size_t d = 1; d < row_entries; ++d) {
        eng->MontMulRaw(row + (d - 1) * limbs, t, row + d * limbs);
      }
      if (i + 1 < digits) {
        eng->MontMulRaw(row + (row_entries - 1) * limbs, t, t);  // t^(2^w).
      }
    }
    return;
  }
  table_.resize(digits);
  // t = base^(2^(w*i)) as i advances; each row holds t^1 .. t^(2^w - 1).
  BigUInt t = ctx_->ToMontgomery(base_);
  for (size_t i = 0; i < digits; ++i) {
    auto& row = table_[i];
    row.resize(row_entries);
    row[0] = t;
    for (size_t d = 1; d < row.size(); ++d) {
      row[d] = ctx_->Multiply(row[d - 1], t);
    }
    if (i + 1 < digits) t = ctx_->Multiply(row.back(), t);  // t^(2^w).
  }
}

BigUInt FixedBaseTable::Pow(const BigUInt& exp) const {
  if (exp.BitLength() > max_exp_bits_) return ctx_->Pow(base_, exp);
  const size_t w = window_;
  const size_t digits = (exp.BitLength() + w - 1) / w;
  if (const FixedMontEngineBase* eng = ctx_->fixed_engine()) {
    const size_t limbs = eng->limbs();
    const size_t row_entries = (size_t{1} << w) - 1;
    uint64_t result[kMaxFixedMontLimbs];
    eng->OneMontRaw(result);
    for (size_t i = 0; i < digits; ++i) {
      const size_t digit = internal::ExpDigit(exp, i * w, w);
      if (digit != 0) {
        const uint64_t* entry =
            fixed_rows_.data() + (i * row_entries + digit - 1) * limbs;
        eng->MontMulRaw(result, entry, result);
      }
    }
    eng->FromMontRaw(result, result);
    return BigUInt::FromLimbs(result, limbs);
  }
  BigUInt result = ctx_->OneMontgomery();
  for (size_t i = 0; i < digits; ++i) {
    size_t digit = internal::ExpDigit(exp, i * w, w);
    if (digit != 0) result = ctx_->Multiply(result, table_[i][digit - 1]);
  }
  return ctx_->FromMontgomery(result);
}

}  // namespace psi
