#include "bigint/montgomery.h"

#include <vector>

#include "common/logging.h"

namespace psi {

namespace {

__extension__ typedef unsigned __int128 u128;

// Inverse of an odd 64-bit value modulo 2^64 by Newton-Hensel lifting:
// each step doubles the number of correct low bits.
uint64_t InverseMod2e64(uint64_t odd) {
  uint64_t x = odd;  // Correct to 3 bits (odd*odd == 1 mod 8).
  for (int i = 0; i < 6; ++i) {
    x *= 2 - odd * x;
  }
  return x;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigUInt& modulus) {
  if (modulus.IsEven() || modulus < BigUInt(3)) {
    return Status::InvalidArgument(
        "Montgomery context requires an odd modulus >= 3");
  }
  size_t limbs = modulus.num_limbs();
  uint64_t n_prime = ~InverseMod2e64(modulus.limb(0)) + 1;  // -n^-1 mod 2^64.
  BigUInt r = BigUInt::PowerOfTwo(64 * limbs);
  BigUInt r_mod_n = r % modulus;
  BigUInt r2_mod_n = BigUInt::PowerOfTwo(128 * limbs) % modulus;
  return MontgomeryContext(modulus, n_prime, std::move(r_mod_n),
                           std::move(r2_mod_n), limbs);
}

BigUInt MontgomeryContext::Reduce(const BigUInt& t) const {
  // Word-level REDC (Montgomery 1985). Precondition: t < n * R.
  std::vector<uint64_t> acc(2 * limbs_ + 1, 0);
  for (size_t i = 0; i < t.num_limbs() && i < acc.size(); ++i) {
    acc[i] = t.limb(i);
  }
  for (size_t i = 0; i < limbs_; ++i) {
    uint64_t m = acc[i] * n_prime_;  // mod 2^64 by wrapping.
    uint64_t carry = 0;
    for (size_t j = 0; j < limbs_; ++j) {
      u128 cur = static_cast<u128>(acc[i + j]) +
                 static_cast<u128>(m) * n_.limb(j) + carry;
      acc[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t idx = i + limbs_;
    while (carry != 0) {
      u128 cur = static_cast<u128>(acc[idx]) + carry;
      acc[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  // Result is acc[limbs_ .. 2*limbs_] (the +1 limb catches the final carry).
  std::vector<uint8_t> bytes((limbs_ + 1) * 8);
  for (size_t i = 0; i <= limbs_; ++i) {
    uint64_t limb = acc[limbs_ + i];
    for (size_t b = 0; b < 8; ++b) {
      bytes[i * 8 + b] = static_cast<uint8_t>((limb >> (8 * b)) & 0xff);
    }
  }
  BigUInt result = BigUInt::FromLittleEndianBytes(bytes);
  if (result >= n_) result -= n_;
  return result;
}

BigUInt MontgomeryContext::ToMontgomery(const BigUInt& a) const {
  PSI_DCHECK(a < n_);
  return Reduce(a * r2_mod_n_);
}

BigUInt MontgomeryContext::FromMontgomery(const BigUInt& a) const {
  return Reduce(a);
}

BigUInt MontgomeryContext::Multiply(const BigUInt& a, const BigUInt& b) const {
  return Reduce(a * b);
}

BigUInt MontgomeryContext::Pow(const BigUInt& base, const BigUInt& exp) const {
  if (n_.IsOne()) return BigUInt();
  BigUInt b_mont = ToMontgomery(base % n_);
  BigUInt result = r_mod_n_;  // Montgomery form of 1.
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = Multiply(result, result);
    if (exp.GetBit(i)) result = Multiply(result, b_mont);
  }
  return FromMontgomery(result);
}

}  // namespace psi
