// Arbitrary-precision unsigned integers.
//
// The MPC protocols need a share modulus S that is astronomically larger than
// the counter bound A (Theorem 4.1 makes the leakage probability ~ A/S), so
// 64-bit arithmetic is not enough; S is typically hundreds of bits.
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is nonzero (zero is the empty vector).

#ifndef PSI_BIGINT_BIGUINT_H_
#define PSI_BIGINT_BIGUINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "common/status.h"

namespace psi {

/// \brief Arbitrary-precision unsigned integer.
class BigUInt {
 public:
  /// Constructs zero.
  BigUInt() = default;

  /// Constructs from a 64-bit value (implicit: literals compose naturally).
  BigUInt(uint64_t v) {  // NOLINT(runtime/explicit)
    if (v != 0) limbs_.push_back(v);
  }

  /// \brief Parses a decimal string ("123456789...").
  [[nodiscard]] static Result<BigUInt> FromDecimalString(std::string_view s);

  /// \brief Parses a hexadecimal string without 0x prefix ("deadbeef").
  [[nodiscard]] static Result<BigUInt> FromHexString(std::string_view s);

  /// \brief Builds from little-endian bytes.
  static BigUInt FromLittleEndianBytes(const std::vector<uint8_t>& bytes);

  /// \brief Builds from a little-endian limb array (high zero limbs fine).
  static BigUInt FromLimbs(const uint64_t* limbs, size_t count);

  /// \brief 2^k.
  static BigUInt PowerOfTwo(size_t k);

  /// \brief Uniform value in [0, bound) via rejection sampling. bound > 0.
  static BigUInt RandomBelow(Rng* rng, const BigUInt& bound);

  /// \brief Uniform value with exactly `bits` random bits (top bit may be 0).
  static BigUInt RandomBits(Rng* rng, size_t bits);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsEven() const { return limbs_.empty() || (limbs_[0] & 1) == 0; }
  bool IsOdd() const { return !IsEven(); }

  /// \brief Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// \brief Value of bit i (false beyond BitLength()).
  bool GetBit(size_t i) const;

  /// \brief Sets bit i to 1, growing as needed.
  void SetBit(size_t i);

  size_t num_limbs() const { return limbs_.size(); }
  uint64_t limb(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  // -- Arithmetic -----------------------------------------------------------

  BigUInt operator+(const BigUInt& rhs) const;
  BigUInt& operator+=(const BigUInt& rhs);

  /// \brief Subtraction; aborts if rhs > *this (use CheckedSub for a Status).
  BigUInt operator-(const BigUInt& rhs) const;
  BigUInt& operator-=(const BigUInt& rhs);

  /// \brief Subtraction returning OutOfRange instead of aborting.
  [[nodiscard]] Result<BigUInt> CheckedSub(const BigUInt& rhs) const;

  BigUInt operator*(const BigUInt& rhs) const;
  BigUInt& operator*=(const BigUInt& rhs);

  /// \brief Quotient; aborts on division by zero.
  BigUInt operator/(const BigUInt& rhs) const;
  /// \brief Remainder; aborts on division by zero.
  BigUInt operator%(const BigUInt& rhs) const;

  /// \brief Computes quotient and remainder in one pass (Knuth Algorithm D).
  static void DivMod(const BigUInt& num, const BigUInt& den, BigUInt* quot,
                     BigUInt* rem);

  BigUInt operator<<(size_t bits) const;
  BigUInt operator>>(size_t bits) const;
  BigUInt& operator<<=(size_t bits);
  BigUInt& operator>>=(size_t bits);

  std::strong_ordering operator<=>(const BigUInt& rhs) const;
  bool operator==(const BigUInt& rhs) const { return limbs_ == rhs.limbs_; }

  // -- Conversions ----------------------------------------------------------

  /// \brief Checked narrowing to 64 bits.
  [[nodiscard]] Result<uint64_t> ToUint64() const;

  /// \brief Nearest double (inf if the value exceeds the double range).
  double ToDouble() const;

  std::string ToDecimalString() const;
  std::string ToHexString() const;

  /// \brief Minimal little-endian byte encoding (empty for zero).
  std::vector<uint8_t> ToLittleEndianBytes() const;

  /// \brief Serialized wire size in bytes (varint length prefix + payload).
  size_t SerializedSize() const;

 private:
  friend class BigUIntTestPeer;

  void Normalize();
  static BigUInt MulSchoolbook(const BigUInt& a, const BigUInt& b);
  static BigUInt MulKaratsuba(const BigUInt& a, const BigUInt& b);
  /// limbs_[lo, hi) as a value.
  BigUInt Slice(size_t lo, size_t hi) const;

  std::vector<uint64_t> limbs_;
};

/// \brief Floating-point quotient a/b computed with full integer precision in
/// the significand (exact to double rounding). Returns 0 if b == 0.
double DivideToDouble(const BigUInt& a, const BigUInt& b);

/// \brief floor(d) as a BigUInt for any finite d >= 0 (d may exceed 2^64:
/// the Z-distributed masks of Protocol 3 are unbounded above).
[[nodiscard]] Result<BigUInt> BigUIntFromDouble(double d);

/// \brief Wire format: varint limb count, then limbs.
void WriteBigUInt(BinaryWriter* w, const BigUInt& v);
[[nodiscard]] Status ReadBigUInt(BinaryReader* r, BigUInt* out);

}  // namespace psi

#endif  // PSI_BIGINT_BIGUINT_H_
