// Limb kernels: the word-level primitives under every fixed-width big-integer
// operation (fixed_uint.h, fixed_mont.h) and under BigUInt's schoolbook
// multiply. Two implementations of each kernel exist:
//
//   * a portable C++ one built on `unsigned __int128` (always compiled), and
//   * an x86-64 BMI2/ADX variant — hand-scheduled mulx/adcx/adox rows in
//     inline asm for the fixed-width Montgomery multiply, carry-chain
//     intrinsics for the runtime-length kernels — compiled with
//     `__attribute__((target("bmi2,adx")))` and selected by a one-time
//     runtime CPUID check.
//
// Both variants compute the same exact integers, so kernel selection can
// never change a protocol transcript — only wall-clock. The CMake option
// PSI_PORTABLE_KERNELS=ON (macro PSI_FORCE_PORTABLE_KERNELS) compiles the
// dispatch down to the portable path so CI can keep it from rotting.
//
// Fixed-width entry points are templates over the limb count: the loop
// bounds are compile-time constants, so the compiler fully unrolls or
// vectorizes them against stack buffers — no allocation, no dynamic sizing.

#ifndef PSI_BIGINT_LIMB_KERNEL_H_
#define PSI_BIGINT_LIMB_KERNEL_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(PSI_FORCE_PORTABLE_KERNELS)
#define PSI_LIMB_KERNEL_X86 1
#include <immintrin.h>
#include <x86intrin.h>
#else
#define PSI_LIMB_KERNEL_X86 0
#endif

namespace psi {
namespace limb_kernel {

__extension__ typedef unsigned __int128 u128;

/// \brief Which kernel implementation the process-wide dispatch selected.
enum class Variant {
  kPortable,  ///< unsigned __int128 arithmetic, any platform.
  kX86Adx,    ///< mulx/adcx/adox carry chains (x86-64 with BMI2+ADX).
};

/// \brief The variant every dispatched kernel call uses, decided once per
/// process: kX86Adx when the binary carries the x86 kernels and CPUID
/// reports BMI2+ADX, else kPortable.
Variant ActiveVariant();

/// \brief True when the x86 kernels are compiled in AND this CPU can run
/// them. Tests use this to compare both implementations limb for limb.
bool X86KernelsAvailable();

/// \brief Human-readable variant name ("portable" / "x86-adx").
const char* VariantName(Variant v);

// -- portable kernels ---------------------------------------------------------

/// out[0 .. an+bn) = a * b, schoolbook, runtime lengths. `out` must not
/// alias the inputs and must be zero-initialized by the caller.
void MulPortable(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
                 uint64_t* out);

/// Fused CIOS Montgomery multiply: out = a*b*R^-1 mod n where R = 2^(64*L),
/// runtime length. Preconditions: n odd, n0 = -n^-1 mod 2^64, a < n, b < n.
void MontMulPortable(const uint64_t* a, const uint64_t* b, const uint64_t* n,
                     uint64_t n0, uint64_t* out, size_t limbs);

#if PSI_LIMB_KERNEL_X86
// -- x86-64 BMI2/ADX kernels --------------------------------------------------
// Only call when X86KernelsAvailable(); running them on an older CPU is an
// illegal-instruction fault, not a wrong answer.

void MulX86(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
            uint64_t* out);
void MontMulX86(const uint64_t* a, const uint64_t* b, const uint64_t* n,
                uint64_t n0, uint64_t* out, size_t limbs);
#endif  // PSI_LIMB_KERNEL_X86

/// Schoolbook multiply through the active variant (BigUInt's base case).
/// `out` must not alias the inputs; caller zero-initializes.
inline void Mul(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
                uint64_t* out) {
#if PSI_LIMB_KERNEL_X86
  if (ActiveVariant() == Variant::kX86Adx) {
    MulX86(a, an, b, bn, out);
    return;
  }
#endif
  MulPortable(a, an, b, bn, out);
}

// -- fixed-width kernels (header-only, compile-time unrolled) -----------------

/// out = a + b over L limbs; returns the carry out (0 or 1).
template <size_t L>
inline uint64_t AddFixed(const uint64_t* a, const uint64_t* b, uint64_t* out) {
  uint64_t carry = 0;
  for (size_t i = 0; i < L; ++i) {
    u128 sum = static_cast<u128>(a[i]) + b[i] + carry;
    out[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  return carry;
}

/// out = a - b over L limbs; returns the borrow out (0 or 1).
template <size_t L>
inline uint64_t SubFixed(const uint64_t* a, const uint64_t* b, uint64_t* out) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < L; ++i) {
    u128 lhs = a[i];
    u128 rhs = static_cast<u128>(b[i]) + borrow;
    out[i] = static_cast<uint64_t>(lhs - rhs);
    borrow = lhs < rhs ? 1 : 0;
  }
  return borrow;
}

/// Three-way compare over L limbs (-1, 0, 1).
template <size_t L>
inline int CompareFixed(const uint64_t* a, const uint64_t* b) {
  for (size_t i = L; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// out[0 .. 2L) = a * b, schoolbook with compile-time bounds. `out` must not
/// alias the inputs; the kernel zeroes it.
template <size_t L>
inline void MulFixedSchoolbook(const uint64_t* a, const uint64_t* b,
                               uint64_t* out) {
  for (size_t i = 0; i < 2 * L; ++i) out[i] = 0;
  for (size_t i = 0; i < L; ++i) {
    uint64_t carry = 0;
    const u128 ai = a[i];
    for (size_t j = 0; j < L; ++j) {
      u128 cur = static_cast<u128>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + L] = carry;
  }
}

/// Limb count at or above which MulFixed splits one Karatsuba level before
/// hitting the schoolbook base case. Stack-buffer Karatsuba has no
/// allocation cost, but the three extra add/sub passes still only amortize
/// on wide operands; 32 limbs (2048-bit operands, the Paillier n^2 width at
/// 1024-bit keys) is where the measured crossover sits — see the sweep
/// notes in biguint.cc next to kKaratsubaThreshold.
constexpr size_t kFixedKaratsubaLimbs = 32;

/// out[0 .. 2L) = a * b: one Karatsuba split for wide fixed operands (L
/// even and >= kFixedKaratsubaLimbs), schoolbook otherwise. All scratch is
/// on the stack.
template <size_t L>
inline void MulFixed(const uint64_t* a, const uint64_t* b, uint64_t* out) {
  if constexpr (L >= kFixedKaratsubaLimbs && L % 2 == 0) {
    constexpr size_t H = L / 2;
    // z0 = a0*b0, z2 = a1*b1 straight into the output halves.
    MulFixed<H>(a, b, out);
    MulFixed<H>(a + H, b + H, out + L);
    // (a0+a1), (b0+b1) with their carry bits.
    uint64_t as[H], bs[H], z1[L];
    const uint64_t ac = AddFixed<H>(a, a + H, as);
    const uint64_t bc = AddFixed<H>(b, b + H, bs);
    MulFixed<H>(as, bs, z1);
    // z1 += carry cross terms: ac*bs and bc*as shifted by H, plus ac*bc at 2H
    // (kept in a single carry accumulator since z1 is only 2H limbs wide).
    uint64_t hi = ac & bc;  // The 2H-limb coefficient of (a0+a1)(b0+b1).
    if (ac != 0) {
      uint64_t c = 0;
      for (size_t i = 0; i < H; ++i) {
        u128 sum = static_cast<u128>(z1[H + i]) + bs[i] + c;
        z1[H + i] = static_cast<uint64_t>(sum);
        c = static_cast<uint64_t>(sum >> 64);
      }
      hi += c;
    }
    if (bc != 0) {
      uint64_t c = 0;
      for (size_t i = 0; i < H; ++i) {
        u128 sum = static_cast<u128>(z1[H + i]) + as[i] + c;
        z1[H + i] = static_cast<uint64_t>(sum);
        c = static_cast<uint64_t>(sum >> 64);
      }
      hi += c;
    }
    // z1 -= z0 + z2 (the middle term), borrowing out of `hi`.
    hi -= SubFixed<L>(z1, out, z1);
    hi -= SubFixed<L>(z1, out + L, z1);
    // out += z1 << (64*H).
    uint64_t c = 0;
    for (size_t i = 0; i < L; ++i) {
      u128 sum = static_cast<u128>(out[H + i]) + z1[i] + c;
      out[H + i] = static_cast<uint64_t>(sum);
      c = static_cast<uint64_t>(sum >> 64);
    }
    // Fold the middle term's high coefficient into the top half.
    u128 top = static_cast<u128>(out[L + H]) + hi + c;
    out[L + H] = static_cast<uint64_t>(top);
    c = static_cast<uint64_t>(top >> 64);
    for (size_t i = L + H + 1; i < 2 * L && c != 0; ++i) {
      u128 sum = static_cast<u128>(out[i]) + c;
      out[i] = static_cast<uint64_t>(sum);
      c = static_cast<uint64_t>(sum >> 64);
    }
  } else {
    MulFixedSchoolbook<L>(a, b, out);
  }
}

/// Fused CIOS Montgomery multiply over a compile-time width:
/// out = a*b*R^-1 mod n with R = 2^(64*L). Preconditions: n odd,
/// n0 = -n^-1 mod 2^64, a < n, b < n; then out < n. Each row folds the
/// a[i]*b pass and the m*n reduction pass into ONE walk over the
/// accumulator with two independent carry words (c1 for the product chain,
/// c2 for the reduction chain): the chains have no data dependence on each
/// other within a column, so the out-of-order core overlaps them, which
/// measures ~20% faster than the classic two-pass CIOS at 16 limbs.
template <size_t L>
inline void MontMulFixedPortable(const uint64_t* a, const uint64_t* b,
                                 const uint64_t* n, uint64_t n0,
                                 uint64_t* out) {
  uint64_t t[L + 2] = {};
  for (size_t i = 0; i < L; ++i) {
    const u128 ai = a[i];
    // Column 0 decides m so the reduced low limb cancels exactly.
    u128 cur = static_cast<u128>(t[0]) + ai * b[0];
    const u128 m = static_cast<uint64_t>(static_cast<uint64_t>(cur) * n0);
    u128 red = static_cast<u128>(static_cast<uint64_t>(cur)) + m * n[0];
    uint64_t c1 = static_cast<uint64_t>(cur >> 64);
    uint64_t c2 = static_cast<uint64_t>(red >> 64);
    for (size_t j = 1; j < L; ++j) {
      cur = static_cast<u128>(t[j]) + ai * b[j] + c1;
      c1 = static_cast<uint64_t>(cur >> 64);
      red = static_cast<u128>(static_cast<uint64_t>(cur)) + m * n[j] + c2;
      c2 = static_cast<uint64_t>(red >> 64);
      t[j - 1] = static_cast<uint64_t>(red);
    }
    u128 last = static_cast<u128>(t[L]) + c1;
    last += c2;
    t[L - 1] = static_cast<uint64_t>(last);
    t[L] = t[L + 1] + static_cast<uint64_t>(last >> 64);
    t[L + 1] = 0;
  }
  // CIOS keeps t < 2n throughout, so one conditional subtract finishes.
  if (t[L] != 0 || CompareFixed<L>(t, n) >= 0) {
    SubFixed<L>(t, n, out);
  } else {
    for (size_t i = 0; i < L; ++i) out[i] = t[i];
  }
}

#if PSI_LIMB_KERNEL_X86
/// One multiply-accumulate row, t[0..L) += mult * src[0..L), as a single
/// asm block: per limb one `mulx` plus an `adox` chain (OF) for the
/// accumulator adds and an `adcx` chain (CF) for the high-limb ripple.
/// `.rept` unrolls the body at assemble time, so no loop counter ever
/// touches the flags the chains live in. The carry state that remains
/// after the last limb (the final high word plus one bit in each flag) is
/// returned for the caller to fold into t[L..L+2).
template <size_t L>
__attribute__((target("bmi2,adx"), always_inline)) inline void RowAddMulX86(
    uint64_t* t, const uint64_t* src, uint64_t mult, uint64_t* hi_out,
    uint64_t* of_out, uint64_t* cf_out) {
  uint64_t hi, of, cf;
  uint64_t* tp = t;
  const uint64_t* sp = src;
  asm volatile(
      "xor %k[hi], %k[hi]\n\t"  // hi = 0 and clears both CF and OF.
      ".rept %c[count]\n\t"
      "mulx (%[sp]), %%r8, %%r9\n\t"  // r9:r8 = mult * *sp
      "adox (%[tp]), %%r8\n\t"        // r8 += *tp   (OF chain)
      "adcx %[hi], %%r8\n\t"          // r8 += hi_prev (CF chain)
      "mov %%r8, (%[tp])\n\t"
      "mov %%r9, %[hi]\n\t"
      "lea 8(%[sp]), %[sp]\n\t"  // lea: pointer bump without flag writes
      "lea 8(%[tp]), %[tp]\n\t"
      ".endr\n\t"
      "mov $0, %k[of]\n\t"
      "mov $0, %k[cf]\n\t"
      "seto %b[of]\n\t"
      "setc %b[cf]\n\t"
      : [hi] "=&r"(hi), [of] "=&r"(of), [cf] "=&r"(cf), [tp] "+r"(tp),
        [sp] "+r"(sp)
      : "d"(mult), [count] "i"(L)
      : "r8", "r9", "cc", "memory");
  *hi_out = hi;
  *of_out = of;
  *cf_out = cf;
}

/// The reduction row with the CIOS shift folded into the stores:
/// t[j-1] = t[j] + m*n[j] + carries for j in 1..L). Column 0 contributes
/// only carries — m is chosen so t[0] + m*n[0] is 0 mod 2^64 — so its
/// result limb is never stored. Same chain structure as RowAddMulX86.
template <size_t L>
__attribute__((target("bmi2,adx"), always_inline)) inline void RowRedcX86(
    uint64_t* t, const uint64_t* n, uint64_t m, uint64_t* hi_out,
    uint64_t* of_out, uint64_t* cf_out) {
  uint64_t hi, of, cf;
  uint64_t* tp = t;
  const uint64_t* np = n;
  asm volatile(
      "xor %%r8d, %%r8d\n\t"          // clears CF and OF
      "mulx (%[np]), %%r8, %[hi]\n\t"  // hi:r8 = m * n[0]
      "adox (%[tp]), %%r8\n\t"         // low limb cancels; keep the OF carry
      ".rept %c[count]\n\t"
      "mulx 8(%[np]), %%r8, %%r9\n\t"
      "adox 8(%[tp]), %%r8\n\t"
      "adcx %[hi], %%r8\n\t"
      "mov %%r8, (%[tp])\n\t"  // shifted store: this is t[j-1]
      "mov %%r9, %[hi]\n\t"
      "lea 8(%[np]), %[np]\n\t"
      "lea 8(%[tp]), %[tp]\n\t"
      ".endr\n\t"
      "mov $0, %k[of]\n\t"
      "mov $0, %k[cf]\n\t"
      "seto %b[of]\n\t"
      "setc %b[cf]\n\t"
      : [hi] "=&r"(hi), [of] "=&r"(of), [cf] "=&r"(cf), [tp] "+r"(tp),
        [np] "+r"(np)
      : "d"(m), [count] "i"(L - 1)
      : "r8", "r9", "cc", "memory");
  *hi_out = hi;
  *of_out = of;
  *cf_out = cf;
}

/// CIOS with hand-scheduled BMI2/ADX rows: ~10 instructions per limb
/// against the ~30 the compiler gets from the __int128 formulation, which
/// is a measured ~1.8x kernel speedup at 16 limbs (~2.3x at 32). The
/// row kernels keep both carry chains in flags; only the per-row folds
/// into the top accumulator limbs run as plain C++. Only call when
/// X86KernelsAvailable(); on an older CPU these opcodes fault.
template <size_t L>
__attribute__((target("bmi2,adx"))) inline void MontMulFixedX86(
    const uint64_t* a, const uint64_t* b, const uint64_t* n, uint64_t n0,
    uint64_t* out) {
  uint64_t t[L + 2] = {};
  for (size_t i = 0; i < L; ++i) {
    uint64_t hi, of, cf;
    RowAddMulX86<L>(t, b, a[i], &hi, &of, &cf);
    u128 top = static_cast<u128>(t[L]) + hi + of;
    top += cf;
    t[L] = static_cast<uint64_t>(top);
    t[L + 1] += static_cast<uint64_t>(top >> 64);
    const uint64_t m = t[0] * n0;
    RowRedcX86<L>(t, n, m, &hi, &of, &cf);
    u128 last = static_cast<u128>(t[L]) + hi + of;
    last += cf;
    t[L - 1] = static_cast<uint64_t>(last);
    t[L] = t[L + 1] + static_cast<uint64_t>(last >> 64);
    t[L + 1] = 0;
  }
  // CIOS keeps t < 2n throughout, so one conditional subtract finishes.
  if (t[L] != 0 || CompareFixed<L>(t, n) >= 0) {
    SubFixed<L>(t, n, out);
  } else {
    for (size_t i = 0; i < L; ++i) out[i] = t[i];
  }
}
#endif  // PSI_LIMB_KERNEL_X86

/// Fixed-width Montgomery multiply through the active variant. This is the
/// innermost call of every fixed-width Pow/Encrypt/Decrypt.
template <size_t L>
inline void MontMul(const uint64_t* a, const uint64_t* b, const uint64_t* n,
                    uint64_t n0, uint64_t* out) {
#if PSI_LIMB_KERNEL_X86
  if (ActiveVariant() == Variant::kX86Adx) {
    MontMulFixedX86<L>(a, b, n, n0, out);
    return;
  }
#endif
  MontMulFixedPortable<L>(a, b, n, n0, out);
}

}  // namespace limb_kernel
}  // namespace psi

#endif  // PSI_BIGINT_LIMB_KERNEL_H_
