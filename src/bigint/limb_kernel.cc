#include "bigint/limb_kernel.h"

namespace psi {
namespace limb_kernel {

namespace {

Variant DetectVariant() {
#if PSI_LIMB_KERNEL_X86
  // BMI2 gives mulx (flag-free 64x64->128 multiply); ADX gives the
  // adcx/adox dual carry chains the fused kernels schedule onto. Both
  // shipped together from Broadwell on, but check each anyway.
  if (__builtin_cpu_supports("bmi2") && __builtin_cpu_supports("adx")) {
    return Variant::kX86Adx;
  }
#endif
  return Variant::kPortable;
}

}  // namespace

Variant ActiveVariant() {
  // CPUID never changes mid-process; decide once, lock-free thereafter.
  static const Variant kActive = DetectVariant();
  return kActive;
}

bool X86KernelsAvailable() {
#if PSI_LIMB_KERNEL_X86
  return DetectVariant() == Variant::kX86Adx;
#else
  return false;
#endif
}

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kX86Adx:
      return "x86-adx";
    case Variant::kPortable:
    default:
      return "portable";
  }
}

void MulPortable(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
                 uint64_t* out) {
  for (size_t i = 0; i < an; ++i) {
    const u128 ai = a[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < bn; ++j) {
      const u128 cur = static_cast<u128>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + bn] = carry;
  }
}

void MontMulPortable(const uint64_t* a, const uint64_t* b, const uint64_t* n,
                     uint64_t n0, uint64_t* out, size_t limbs) {
  // Runtime-length CIOS, algorithmically identical to
  // MontMulFixedPortable<L>; tests diff the two limb for limb.
  constexpr size_t kMaxLimbs = 64;
  uint64_t t[kMaxLimbs + 2] = {};
  for (size_t i = 0; i < limbs; ++i) {
    const u128 ai = a[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < limbs; ++j) {
      const u128 cur = static_cast<u128>(t[j]) + ai * b[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    const u128 top = static_cast<u128>(t[limbs]) + carry;
    t[limbs] = static_cast<uint64_t>(top);
    t[limbs + 1] += static_cast<uint64_t>(top >> 64);
    const u128 m = static_cast<uint64_t>(t[0] * n0);
    u128 cur = static_cast<u128>(t[0]) + m * n[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < limbs; ++j) {
      cur = static_cast<u128>(t[j]) + m * n[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    const u128 last = static_cast<u128>(t[limbs]) + carry;
    t[limbs - 1] = static_cast<uint64_t>(last);
    t[limbs] = t[limbs + 1] + static_cast<uint64_t>(last >> 64);
    t[limbs + 1] = 0;
  }
  bool ge = t[limbs] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = limbs; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < limbs; ++i) {
      const u128 lhs = t[i];
      const u128 rhs = static_cast<u128>(n[i]) + borrow;
      out[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = lhs < rhs ? 1 : 0;
    }
  } else {
    for (size_t i = 0; i < limbs; ++i) out[i] = t[i];
  }
}

#if PSI_LIMB_KERNEL_X86

__attribute__((target("bmi2,adx"))) void MulX86(const uint64_t* a, size_t an,
                                                const uint64_t* b, size_t bn,
                                                uint64_t* out) {
  for (size_t i = 0; i < an; ++i) {
    unsigned long long carry = 0;
    for (size_t j = 0; j < bn; ++j) {
      unsigned long long hi = 0;
      unsigned long long lo = _mulx_u64(a[i], b[j], &hi);
      hi += _addcarry_u64(0, lo, carry, &lo);
      unsigned long long cur = out[i + j];
      carry = hi + _addcarry_u64(0, cur, lo, &cur);
      out[i + j] = static_cast<uint64_t>(cur);
    }
    out[i + bn] = static_cast<uint64_t>(carry);
  }
}

__attribute__((target("bmi2,adx"))) void MontMulX86(const uint64_t* a,
                                                    const uint64_t* b,
                                                    const uint64_t* n,
                                                    uint64_t n0, uint64_t* out,
                                                    size_t limbs) {
  constexpr size_t kMaxLimbs = 64;
  unsigned long long t[kMaxLimbs + 2] = {};
  for (size_t i = 0; i < limbs; ++i) {
    unsigned long long carry = 0;
    for (size_t j = 0; j < limbs; ++j) {
      unsigned long long hi = 0;
      unsigned long long lo = _mulx_u64(a[i], b[j], &hi);
      hi += _addcarry_u64(0, lo, carry, &lo);
      carry = hi + _addcarry_u64(0, t[j], lo, &t[j]);
    }
    t[limbs + 1] += _addcarry_u64(0, t[limbs], carry, &t[limbs]);
    const unsigned long long m =
        static_cast<unsigned long long>(static_cast<uint64_t>(t[0]) * n0);
    unsigned long long hi = 0;
    unsigned long long lo = _mulx_u64(m, n[0], &hi);
    unsigned long long drop = 0;
    unsigned long long carry2 = hi + _addcarry_u64(0, t[0], lo, &drop);
    for (size_t j = 1; j < limbs; ++j) {
      lo = _mulx_u64(m, n[j], &hi);
      hi += _addcarry_u64(0, lo, carry2, &lo);
      carry2 = hi + _addcarry_u64(0, t[j], lo, &t[j - 1]);
    }
    const unsigned char c = _addcarry_u64(0, t[limbs], carry2, &t[limbs - 1]);
    t[limbs] = t[limbs + 1] + c;
    t[limbs + 1] = 0;
  }
  bool ge = t[limbs] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = limbs; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    unsigned char borrow = 0;
    for (size_t i = 0; i < limbs; ++i) {
      unsigned long long d = 0;
      borrow = _subborrow_u64(borrow, t[i], n[i], &d);
      out[i] = static_cast<uint64_t>(d);
    }
  } else {
    for (size_t i = 0; i < limbs; ++i) out[i] = static_cast<uint64_t>(t[i]);
  }
}

#endif  // PSI_LIMB_KERNEL_X86

}  // namespace limb_kernel
}  // namespace psi
