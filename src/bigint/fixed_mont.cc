#include "bigint/fixed_mont.h"

#include <vector>

#include "bigint/limb_kernel.h"
#include "bigint/pow_window.h"
#include "common/logging.h"

namespace psi {

namespace {

template <size_t L>
class FixedMontEngine final : public FixedMontEngineBase {
 public:
  FixedMontEngine(const BigUInt& modulus, uint64_t n_prime,
                  const BigUInt& r_mod_n, const BigUInt& r2_mod_n)
      : n_big_(modulus), n0_(n_prime) {
    for (size_t i = 0; i < L; ++i) {
      n_[i] = modulus.limb(i);
      one_mont_[i] = r_mod_n.limb(i);
      r2_[i] = r2_mod_n.limb(i);
      one_[i] = i == 0 ? 1 : 0;
    }
  }

  size_t limbs() const override { return L; }

  void MontMulRaw(const uint64_t* a, const uint64_t* b,
                  uint64_t* out) const override {
    limb_kernel::MontMul<L>(a, b, n_, n0_, out);
  }

  void ToMontRaw(const uint64_t* a, uint64_t* out) const override {
    limb_kernel::MontMul<L>(a, r2_, n_, n0_, out);
  }

  void FromMontRaw(const uint64_t* a, uint64_t* out) const override {
    // REDC(a * 1) = a * R^-1 mod n.
    limb_kernel::MontMul<L>(a, one_, n_, n0_, out);
  }

  void OneMontRaw(uint64_t* out) const override {
    for (size_t i = 0; i < L; ++i) out[i] = one_mont_[i];
  }

  BigUInt Multiply(const BigUInt& a, const BigUInt& b) const override {
    uint64_t ra[L], rb[L], ro[L];
    Load(a, ra);
    Load(b, rb);
    limb_kernel::MontMul<L>(ra, rb, n_, n0_, ro);
    return BigUInt::FromLimbs(ro, L);
  }

  BigUInt ToMontgomery(const BigUInt& a) const override {
    PSI_DCHECK(a < n_big_);
    uint64_t ra[L];
    Load(a, ra);
    ToMontRaw(ra, ra);
    return BigUInt::FromLimbs(ra, L);
  }

  BigUInt FromMontgomery(const BigUInt& a) const override {
    uint64_t ra[L];
    Load(a, ra);
    FromMontRaw(ra, ra);
    return BigUInt::FromLimbs(ra, L);
  }

  BigUInt Pow(const BigUInt& base,
              PSI_SECRET const BigUInt& exp) const override {
    // Same digit walk as the heap MontgomeryContext::Pow (pow_window.h), so
    // the two paths compute identical intermediate values — only the limb
    // storage differs.
    uint64_t b_mont[L];
    Load(base % n_big_, b_mont);
    ToMontRaw(b_mont, b_mont);
    const size_t bits = exp.BitLength();
    const size_t w = internal::WindowBitsFor(bits);
    uint64_t result[L];
    // psi-lint: allow(secret-flow) w derives only from exp.BitLength(); the key size is a public parameter
    if (w == 1) {
      OneMontRaw(result);
      for (size_t i = bits; i-- > 0;) {
        MontMulRaw(result, result, result);
        // psi-lint: allow(secret-flow) exponent ladder at the key owner; DESIGN.md's simulated network carries no timing channel
        if (exp.GetBit(i)) MontMulRaw(result, b_mont, result);
      }
    } else {
      // table[d] = base^d in Montgomery form, d < 2^w, rows flat at stride L.
      // psi-lint: allow(secret-flow) shift count w is a function of the public key size only
      const size_t table_size = size_t{1} << w;
      std::vector<uint64_t> table(table_size * L);
      OneMontRaw(table.data());
      for (size_t i = 0; i < L; ++i) table[L + i] = b_mont[i];
      for (size_t d = 2; d < table_size; ++d) {
        MontMulRaw(&table[(d - 1) * L], b_mont, &table[d * L]);
      }
      // psi-lint: allow(secret-flow) digit count depends on the public key size, not the exponent value
      const size_t digits = (bits + w - 1) / w;
      const size_t top = internal::ExpDigit(exp, (digits - 1) * w, w);
      // psi-lint: allow(secret-flow) windowed table walk at the key owner; same exposure DESIGN.md accepts for the ladder above
      for (size_t i = 0; i < L; ++i) result[i] = table[top * L + i];
      for (size_t d = digits - 1; d-- > 0;) {
        for (size_t s = 0; s < w; ++s) MontMulRaw(result, result, result);
        const size_t digit = internal::ExpDigit(exp, d * w, w);
        // psi-lint: allow(secret-flow) windowed table walk at the key owner; same exposure DESIGN.md accepts for the ladder above
        if (digit != 0) MontMulRaw(result, &table[digit * L], result);
      }
    }
    FromMontRaw(result, result);
    return BigUInt::FromLimbs(result, L);
  }

 private:
  /// Loads a value < n into an L-limb buffer (high limbs zero-filled).
  static void Load(const BigUInt& v, uint64_t* out) {
    PSI_DCHECK(v.num_limbs() <= L);
    for (size_t i = 0; i < L; ++i) out[i] = v.limb(i);
  }

  BigUInt n_big_;           // For the boundary reductions (base % n).
  uint64_t n_[L];           // The modulus.
  uint64_t one_mont_[L];    // R mod n (Montgomery form of 1).
  uint64_t r2_[L];          // R^2 mod n (ToMontgomery multiplier).
  uint64_t one_[L];         // Plain 1 (FromMontgomery multiplier).
  uint64_t n0_;             // -n^-1 mod 2^64.
};

}  // namespace

std::shared_ptr<const FixedMontEngineBase> MakeFixedMontEngine(
    const BigUInt& modulus, uint64_t n_prime, const BigUInt& r_mod_n,
    const BigUInt& r2_mod_n) {
  // Only an EXACT width match attaches an engine: the engine's R is
  // 2^(64*L), and only L == num_limbs(modulus) reproduces the heap path's
  // R, keeping Montgomery-domain values interchangeable between the two.
  switch (modulus.num_limbs()) {
    case 4:
      return std::make_shared<FixedMontEngine<4>>(modulus, n_prime, r_mod_n,
                                                  r2_mod_n);
    case 8:
      return std::make_shared<FixedMontEngine<8>>(modulus, n_prime, r_mod_n,
                                                  r2_mod_n);
    case 16:
      return std::make_shared<FixedMontEngine<16>>(modulus, n_prime, r_mod_n,
                                                   r2_mod_n);
    case 32:
      return std::make_shared<FixedMontEngine<32>>(modulus, n_prime, r_mod_n,
                                                   r2_mod_n);
    case 64:
      return std::make_shared<FixedMontEngine<64>>(modulus, n_prime, r_mod_n,
                                                   r2_mod_n);
    default:
      return nullptr;
  }
}

}  // namespace psi
