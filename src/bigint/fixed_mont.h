// Fixed-width Montgomery engine: the stack-allocated fast path under
// MontgomeryContext. When a modulus is exactly one of the instantiated limb
// widths (the 512/1024/2048-bit key geometries Paillier/RSA use, their n^2,
// and the CRT half-sizes), MontgomeryContext::Create attaches an engine and
// routes Multiply/Pow/ToMontgomery/FromMontgomery through it: every inner
// multiply becomes a compile-time-unrolled CIOS kernel over FixedUInt-style
// stack buffers (limb_kernel.h) instead of heap-limbed BigUInt REDC.
//
// The engine uses the SAME R = 2^(64 * num_limbs(n)) as the heap path — the
// exact-width match in MakeFixedMontEngine guarantees that — so Montgomery-
// domain values are interchangeable between the two paths and results are
// bit-for-bit identical. Kernel choice (portable vs x86) cannot change any
// value either; both compute the same exact integers. Protocol transcripts
// therefore do not move by a single byte when the engine engages.
//
// To add a new key geometry: add its limb width to kFixedMontWidths and a
// matching case in MakeFixedMontEngine's width switch (fixed_mont.cc) —
// that case instantiates FixedMontEngine<W> and all its kernels. Nothing
// else changes (docs/PERF.md "Fixed-width limb engine").

#ifndef PSI_BIGINT_FIXED_MONT_H_
#define PSI_BIGINT_FIXED_MONT_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "bigint/biguint.h"
#include "common/annotations.h"

namespace psi {

/// Widths (in 64-bit limbs) the engine is instantiated for: 256 to
/// 4096-bit moduli in powers of two. Covers p/q, p^2/q^2, n and n^2 for
/// 512/1024/2048-bit Paillier/RSA keys.
inline constexpr size_t kFixedMontWidths[] = {4, 8, 16, 32, 64};

/// Largest instantiated width; raw-limb scratch buffers size to this.
inline constexpr size_t kMaxFixedMontLimbs = 64;

/// \brief Type-erased fixed-width Montgomery engine for one odd modulus.
///
/// Raw-limb entry points operate on little-endian buffers of exactly
/// limbs() limbs (callers own the storage; kMaxFixedMontLimbs bounds it),
/// letting hot loops (FixedBaseTable::Pow, the exponentiation ladder) stay
/// allocation-free. BigUInt entry points convert at the boundary only.
/// Read-only after construction: safe to share across ParallelFor workers.
class FixedMontEngineBase {
 public:
  virtual ~FixedMontEngineBase() = default;

  /// Width of every raw-limb buffer, == num_limbs of the modulus.
  virtual size_t limbs() const = 0;

  // -- raw-limb hot path (no allocation, fixed-width kernels) ---------------

  /// out = a*b*R^-1 mod n for Montgomery-domain a, b < n. Aliasing with
  /// either input is fine.
  virtual void MontMulRaw(const uint64_t* a, const uint64_t* b,
                          uint64_t* out) const = 0;

  /// out = a*R mod n for an ordinary residue a < n.
  virtual void ToMontRaw(const uint64_t* a, uint64_t* out) const = 0;

  /// out = a*R^-1 mod n (leaves the Montgomery domain).
  virtual void FromMontRaw(const uint64_t* a, uint64_t* out) const = 0;

  /// out = R mod n, the Montgomery form of 1.
  virtual void OneMontRaw(uint64_t* out) const = 0;

  // -- BigUInt boundary -----------------------------------------------------

  /// Montgomery product of two domain values (< n).
  virtual BigUInt Multiply(const BigUInt& a, const BigUInt& b) const = 0;

  virtual BigUInt ToMontgomery(const BigUInt& a) const = 0;
  virtual BigUInt FromMontgomery(const BigUInt& a) const = 0;

  /// base^exp mod n, fixed-window ladder over the raw kernels. `base` is an
  /// ordinary residue (reduced internally). The exponent is key material on
  /// the decrypt path, hence the taint annotation.
  virtual BigUInt Pow(const BigUInt& base, PSI_SECRET const BigUInt& exp)
      const = 0;
};

/// \brief Builds the engine for `modulus` when its exact limb width is one
/// of kFixedMontWidths; returns nullptr otherwise (callers keep the heap
/// path). Preconditions match MontgomeryContext: odd modulus >= 3;
/// `n_prime` = -n^-1 mod 2^64, `r_mod_n`/`r2_mod_n` for R = 2^(64*limbs).
std::shared_ptr<const FixedMontEngineBase> MakeFixedMontEngine(
    const BigUInt& modulus, uint64_t n_prime, const BigUInt& r_mod_n,
    const BigUInt& r2_mod_n);

}  // namespace psi

#endif  // PSI_BIGINT_FIXED_MONT_H_
