#include "bigint/modular.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/logging.h"

namespace psi {

namespace {

// Thread-local MRU cache of Montgomery contexts. Repeated ModPow calls with
// the same modulus (Miller-Rabin rounds, every Paillier/RSA operation of a
// protocol run) would otherwise rebuild R^2 mod n — two Knuth divisions —
// per exponentiation. Four entries cover the working set of the widest
// caller (RSA-CRT decryption alternates p and q while the peer's n and n^2
// stay warm). Thread-local storage keeps the cache lock-free under
// ParallelFor workers. The returned pointer is invalidated by the next
// lookup on the same thread.
const MontgomeryContext* CachedMontgomeryContext(const BigUInt& m) {
  constexpr size_t kCacheCap = 4;
  // Engine-backed and heap-only contexts cache separately: a live
  // ScopedHeapOnlyModPow guard must never be served (or evict) the other
  // flavor.
  const bool heap_only = internal::HeapOnlyEngineForced();
  thread_local std::vector<std::pair<BigUInt, MontgomeryContext>> cache_auto;
  thread_local std::vector<std::pair<BigUInt, MontgomeryContext>> cache_heap;
  auto& cache = heap_only ? cache_heap : cache_auto;
  for (size_t i = 0; i < cache.size(); ++i) {
    if (cache[i].first == m) {
      if (i != 0) {
        auto mid = cache.begin() + static_cast<ptrdiff_t>(i);
        std::rotate(cache.begin(), mid, mid + 1);
      }
      return &cache.front().second;
    }
  }
  auto ctx = MontgomeryContext::Create(
      m, heap_only ? EngineMode::kHeapOnly : EngineMode::kAuto);
  if (!ctx.ok()) return nullptr;
  if (cache.size() >= kCacheCap) cache.pop_back();
  cache.emplace(cache.begin(), m, std::move(ctx).MoveValue());
  return &cache.front().second;
}

}  // namespace

ScopedHeapOnlyModPow::ScopedHeapOnlyModPow()
    : prev_(internal::HeapOnlyEngineForced()) {
  internal::SetHeapOnlyEngineForced(true);
}

ScopedHeapOnlyModPow::~ScopedHeapOnlyModPow() {
  internal::SetHeapOnlyEngineForced(prev_);
}

BigUInt ModAdd(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  PSI_DCHECK(a < m && b < m);
  BigUInt sum = a + b;
  if (sum >= m) sum -= m;
  return sum;
}

BigUInt ModSub(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  PSI_DCHECK(a < m && b < m);
  if (a >= b) return a - b;
  return m - (b - a);
}

BigUInt ModMul(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  return (a * b) % m;
}

BigUInt ModPow(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  PSI_CHECK(!m.IsZero()) << "ModPow modulus must be positive";
  if (m.IsOne()) return BigUInt();
  // Odd multi-limb moduli (the RSA/Paillier case) route through Montgomery
  // arithmetic: REDC replaces every Knuth-division reduction, and the
  // thread-local context cache amortizes the R^2 mod n setup across calls.
  if (m.IsOdd() && m.BitLength() >= 128 && exp.BitLength() >= 8) {
    if (const MontgomeryContext* ctx = CachedMontgomeryContext(m)) {
      return ctx->Pow(base, exp);
    }
  }
  BigUInt result(1);
  BigUInt b = base % m;
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = ModMul(result, result, m);
    if (exp.GetBit(i)) result = ModMul(result, b, m);
  }
  return result;
}

BigUInt Gcd(BigUInt a, BigUInt b) {
  while (!b.IsZero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt Lcm(const BigUInt& a, const BigUInt& b) {
  if (a.IsZero() || b.IsZero()) return BigUInt();
  return (a / Gcd(a, b)) * b;
}

Result<BigUInt> ModInverse(const BigUInt& a, const BigUInt& m) {
  if (m < BigUInt(2)) {
    return Status::InvalidArgument("ModInverse modulus must be >= 2");
  }
  // Extended Euclid over signed integers: track r = old_s * a (mod m).
  BigInt old_r(a % m), r(m);
  BigInt old_s(1), s(0);
  while (!r.IsZero()) {
    BigInt q = old_r / r;
    BigInt tmp = old_r - q * r;
    old_r = std::exchange(r, tmp);
    tmp = old_s - q * s;
    old_s = std::exchange(s, tmp);
  }
  if (!(old_r == BigInt(1))) {
    return Status::InvalidArgument("ModInverse: arguments are not coprime");
  }
  return old_s.Mod(m);
}

}  // namespace psi
