#include "bigint/modular.h"

#include <utility>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/logging.h"

namespace psi {

BigUInt ModAdd(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  PSI_DCHECK(a < m && b < m);
  BigUInt sum = a + b;
  if (sum >= m) sum -= m;
  return sum;
}

BigUInt ModSub(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  PSI_DCHECK(a < m && b < m);
  if (a >= b) return a - b;
  return m - (b - a);
}

BigUInt ModMul(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  return (a * b) % m;
}

BigUInt ModPow(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  PSI_CHECK(!m.IsZero()) << "ModPow modulus must be positive";
  if (m.IsOne()) return BigUInt();
  // Odd multi-limb moduli (the RSA/Paillier case) route through Montgomery
  // arithmetic: REDC replaces every Knuth-division reduction. The context
  // setup costs two divisions, amortized over the exponent bits.
  if (m.IsOdd() && m.BitLength() >= 128 && exp.BitLength() >= 8) {
    auto ctx = MontgomeryContext::Create(m);
    if (ctx.ok()) return ctx->Pow(base, exp);
  }
  BigUInt result(1);
  BigUInt b = base % m;
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = ModMul(result, result, m);
    if (exp.GetBit(i)) result = ModMul(result, b, m);
  }
  return result;
}

BigUInt Gcd(BigUInt a, BigUInt b) {
  while (!b.IsZero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt Lcm(const BigUInt& a, const BigUInt& b) {
  if (a.IsZero() || b.IsZero()) return BigUInt();
  return (a / Gcd(a, b)) * b;
}

Result<BigUInt> ModInverse(const BigUInt& a, const BigUInt& m) {
  if (m < BigUInt(2)) {
    return Status::InvalidArgument("ModInverse modulus must be >= 2");
  }
  // Extended Euclid over signed integers: track r = old_s * a (mod m).
  BigInt old_r(a % m), r(m);
  BigInt old_s(1), s(0);
  while (!r.IsZero()) {
    BigInt q = old_r / r;
    BigInt tmp = old_r - q * r;
    old_r = std::exchange(r, tmp);
    tmp = old_s - q * s;
    old_s = std::exchange(s, tmp);
  }
  if (!(old_r == BigInt(1))) {
    return Status::InvalidArgument("ModInverse: arguments are not coprime");
  }
  return old_s.Mod(m);
}

}  // namespace psi
