// Signed arbitrary-precision integers (sign-and-magnitude over BigUInt).
//
// Protocol 2 can leave player P2 with a *negative* integer share
// (s2 <- s2 - S), so the share arithmetic in the MPC layer is signed.

#ifndef PSI_BIGINT_BIGINT_H_
#define PSI_BIGINT_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "bigint/biguint.h"

namespace psi {

/// \brief Arbitrary-precision signed integer.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a native signed value (implicit for literal ergonomics).
  BigInt(int64_t v)  // NOLINT(runtime/explicit)
      : negative_(v < 0),
        magnitude_(v < 0 ? static_cast<uint64_t>(-(v + 1)) + 1
                         : static_cast<uint64_t>(v)) {}

  /// Constructs from a magnitude and sign. A zero magnitude is non-negative.
  BigInt(BigUInt magnitude, bool negative)
      : negative_(negative && !magnitude.IsZero()),
        magnitude_(std::move(magnitude)) {}

  /// Constructs a non-negative value from a BigUInt.
  BigInt(BigUInt magnitude)  // NOLINT(runtime/explicit)
      : magnitude_(std::move(magnitude)) {}

  /// \brief Parses optional leading '-' followed by decimal digits.
  [[nodiscard]] static Result<BigInt> FromDecimalString(std::string_view s);

  bool IsZero() const { return magnitude_.IsZero(); }
  bool IsNegative() const { return negative_; }
  const BigUInt& magnitude() const { return magnitude_; }

  BigInt operator-() const { return BigInt(magnitude_, !negative_); }

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;

  /// \brief Truncated division (C++ semantics); aborts on zero divisor.
  BigInt operator/(const BigInt& rhs) const;

  /// \brief Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }

  std::strong_ordering operator<=>(const BigInt& rhs) const;
  bool operator==(const BigInt& rhs) const {
    return negative_ == rhs.negative_ && magnitude_ == rhs.magnitude_;
  }

  /// \brief Canonical non-negative residue in [0, m). Aborts if m == 0.
  BigUInt Mod(const BigUInt& m) const;

  /// \brief Checked narrowing to int64_t.
  [[nodiscard]] Result<int64_t> ToInt64() const;

  /// \brief Nearest double.
  double ToDouble() const {
    return negative_ ? -magnitude_.ToDouble() : magnitude_.ToDouble();
  }

  std::string ToDecimalString() const;

 private:
  bool negative_ = false;
  BigUInt magnitude_;
};

/// \brief Wire format: 1 sign byte then the magnitude.
void WriteBigInt(BinaryWriter* w, const BigInt& v);
[[nodiscard]] Status ReadBigInt(BinaryReader* r, BigInt* out);

}  // namespace psi

#endif  // PSI_BIGINT_BIGINT_H_
