// Window-size policy shared by every modular-exponentiation loop (the heap
// MontgomeryContext, the fixed-width engine, and FixedBaseTable). Keeping
// the policy in one place guarantees the heap and fixed paths walk the same
// digits in the same order — a precondition for the differential tests that
// pin them against each other.

#ifndef PSI_BIGINT_POW_WINDOW_H_
#define PSI_BIGINT_POW_WINDOW_H_

#include <cstddef>

#include "bigint/biguint.h"

namespace psi {
namespace internal {

/// Fixed-window width for a `bits`-bit exponent: chosen so the 2^w - 1 table
/// multiplies amortize against the ~bits * (1/2 - 1/w) multiplies the window
/// saves over plain square-and-multiply.
inline size_t WindowBitsFor(size_t bits) {
  if (bits <= 24) return 1;
  if (bits <= 96) return 2;
  if (bits <= 256) return 3;
  if (bits <= 1024) return 4;
  return 5;
}

/// The w-bit digit of exp starting at bit position pos (little-endian).
inline size_t ExpDigit(const BigUInt& exp, size_t pos, size_t w) {
  size_t digit = 0;
  for (size_t j = w; j-- > 0;) {
    digit = (digit << 1) | static_cast<size_t>(exp.GetBit(pos + j));
  }
  return digit;
}

}  // namespace internal
}  // namespace psi

#endif  // PSI_BIGINT_POW_WINDOW_H_
